// Package tsne implements exact t-distributed stochastic neighbor embedding
// (van der Maaten & Hinton, JMLR 2008), the dimension-reduction tool behind
// the paper's Figure 6 visualization of learned influence embeddings.
//
// The implementation is the standard exact O(n²) algorithm: Gaussian input
// affinities with per-point bandwidths found by binary search on perplexity,
// symmetrization, early exaggeration, and momentum gradient descent on the
// Student-t output affinities. It is intended for the Figure 6 scale
// (hundreds of points), not for millions.
package tsne

import (
	"fmt"
	"math"

	"inf2vec/internal/rng"
)

// Config controls the embedding.
type Config struct {
	// Perplexity is the effective neighbor count (default 30; it is clamped
	// to at most (n-1)/3 as usual).
	Perplexity float64
	// Iterations of gradient descent (default 500).
	Iterations int
	// LearningRate of gradient descent (default 100).
	LearningRate float64
	// Seed drives the initial layout.
	Seed uint64
}

func (cfg Config) withDefaults(n int) (Config, error) {
	if cfg.Perplexity == 0 {
		cfg.Perplexity = 30
	}
	if cfg.Iterations == 0 {
		cfg.Iterations = 500
	}
	if cfg.LearningRate == 0 {
		cfg.LearningRate = 100
	}
	if cfg.Perplexity < 1 || cfg.Iterations < 1 || cfg.LearningRate <= 0 {
		return cfg, fmt.Errorf("tsne: invalid config %+v", cfg)
	}
	if maxPerp := float64(n-1) / 3; cfg.Perplexity > maxPerp && maxPerp >= 1 {
		cfg.Perplexity = maxPerp
	}
	return cfg, nil
}

// Point is a 2-D embedding coordinate.
type Point struct{ X, Y float64 }

// Embed maps the n×d input vectors to 2-D. It returns an error for fewer
// than four points (perplexity is meaningless below that).
func Embed(x [][]float32, cfg Config) ([]Point, error) {
	n := len(x)
	if n < 4 {
		return nil, fmt.Errorf("tsne: need at least 4 points, got %d", n)
	}
	d := len(x[0])
	for i, row := range x {
		if len(row) != d {
			return nil, fmt.Errorf("tsne: row %d has dimension %d, want %d", i, len(row), d)
		}
	}
	cfg, err := cfg.withDefaults(n)
	if err != nil {
		return nil, err
	}

	p := inputAffinities(x, cfg.Perplexity)

	// Early exaggeration.
	const exaggeration = 12.0
	exaggerationIters := cfg.Iterations / 4
	for i := range p {
		p[i] *= exaggeration
	}

	r := rng.New(cfg.Seed)
	y := make([]Point, n)
	for i := range y {
		y[i] = Point{X: r.NormFloat64() * 1e-4, Y: r.NormFloat64() * 1e-4}
	}
	vel := make([]Point, n)
	grad := make([]Point, n)
	gain := make([]Point, n)
	for i := range gain {
		gain[i] = Point{X: 1, Y: 1}
	}
	q := make([]float64, n*n)

	for iter := 0; iter < cfg.Iterations; iter++ {
		if iter == exaggerationIters {
			for i := range p {
				p[i] /= exaggeration
			}
		}
		momentum := 0.5
		if iter >= exaggerationIters {
			momentum = 0.8
		}

		// Student-t output affinities (unnormalized) and their sum.
		var qSum float64
		for i := 0; i < n; i++ {
			q[i*n+i] = 0
			for j := i + 1; j < n; j++ {
				dx := y[i].X - y[j].X
				dy := y[i].Y - y[j].Y
				w := 1 / (1 + dx*dx + dy*dy)
				q[i*n+j] = w
				q[j*n+i] = w
				qSum += 2 * w
			}
		}
		if qSum < 1e-12 {
			qSum = 1e-12
		}

		// Gradient: 4 Σ_j (p_ij − q_ij) w_ij (y_i − y_j).
		for i := range grad {
			grad[i] = Point{}
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				w := q[i*n+j]
				mult := 4 * (p[i*n+j] - w/qSum) * w
				grad[i].X += mult * (y[i].X - y[j].X)
				grad[i].Y += mult * (y[i].Y - y[j].Y)
			}
		}
		// Adaptive per-coordinate gains (van der Maaten's reference
		// implementation): boost coordinates whose gradient keeps pointing
		// against the velocity, damp the rest.
		for i := range y {
			gain[i].X = updateGain(gain[i].X, grad[i].X, vel[i].X)
			gain[i].Y = updateGain(gain[i].Y, grad[i].Y, vel[i].Y)
			vel[i].X = momentum*vel[i].X - cfg.LearningRate*gain[i].X*grad[i].X
			vel[i].Y = momentum*vel[i].Y - cfg.LearningRate*gain[i].Y*grad[i].Y
			y[i].X += vel[i].X
			y[i].Y += vel[i].Y
		}
		// Re-center to keep coordinates bounded.
		var cx, cy float64
		for i := range y {
			cx += y[i].X
			cy += y[i].Y
		}
		cx /= float64(n)
		cy /= float64(n)
		for i := range y {
			y[i].X -= cx
			y[i].Y -= cy
		}
	}
	return y, nil
}

// updateGain applies the reference implementation's gain schedule.
func updateGain(gain, grad, vel float64) float64 {
	if (grad > 0) != (vel > 0) {
		gain += 0.2
	} else {
		gain *= 0.8
	}
	if gain < 0.01 {
		gain = 0.01
	}
	return gain
}

// inputAffinities computes the symmetrized, normalized joint probabilities
// p_ij from the input vectors, with per-point bandwidth found by binary
// search to match the target perplexity.
func inputAffinities(x [][]float32, perplexity float64) []float64 {
	n := len(x)
	dist := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			var s float64
			for k := range x[i] {
				d := float64(x[i][k]) - float64(x[j][k])
				s += d * d
			}
			dist[i*n+j] = s
			dist[j*n+i] = s
		}
	}

	logPerp := math.Log(perplexity)
	p := make([]float64, n*n)
	row := make([]float64, n)
	for i := 0; i < n; i++ {
		// Binary search beta = 1/(2σ²) so the row entropy matches log(perp).
		beta := 1.0
		betaMin, betaMax := math.Inf(-1), math.Inf(1)
		for attempt := 0; attempt < 50; attempt++ {
			var sum float64
			for j := 0; j < n; j++ {
				if j == i {
					row[j] = 0
					continue
				}
				row[j] = math.Exp(-dist[i*n+j] * beta)
				sum += row[j]
			}
			var entropy float64
			if sum > 0 {
				for j := 0; j < n; j++ {
					if row[j] > 0 {
						pj := row[j] / sum
						entropy -= pj * math.Log(pj)
					}
				}
			}
			diff := entropy - logPerp
			if math.Abs(diff) < 1e-5 {
				break
			}
			if diff > 0 {
				betaMin = beta
				if math.IsInf(betaMax, 1) {
					beta *= 2
				} else {
					beta = (beta + betaMax) / 2
				}
			} else {
				betaMax = beta
				if math.IsInf(betaMin, -1) {
					beta /= 2
				} else {
					beta = (beta + betaMin) / 2
				}
			}
		}
		var sum float64
		for j := 0; j < n; j++ {
			if j != i {
				row[j] = math.Exp(-dist[i*n+j] * beta)
				sum += row[j]
			}
		}
		if sum == 0 {
			// Degenerate row (all points identical): uniform fallback.
			for j := 0; j < n; j++ {
				if j != i {
					p[i*n+j] = 1 / float64(n-1)
				}
			}
			continue
		}
		for j := 0; j < n; j++ {
			if j != i {
				p[i*n+j] = row[j] / sum
			}
		}
	}
	// Symmetrize and normalize: p_ij = (p_j|i + p_i|j) / 2n, floored.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := (p[i*n+j] + p[j*n+i]) / (2 * float64(n))
			if v < 1e-12 {
				v = 1e-12
			}
			p[i*n+j] = v
			p[j*n+i] = v
		}
	}
	return p
}

// PairProximity quantifies Figure 6: the mean Euclidean distance in the 2-D
// layout between the two endpoints of each given index pair, normalized by
// the mean distance over all point pairs. Values well below 1 mean the
// highlighted influence pairs sit closer than chance.
func PairProximity(layout []Point, pairs [][2]int) (float64, error) {
	if len(layout) < 2 || len(pairs) == 0 {
		return 0, fmt.Errorf("tsne: proximity needs >=2 points and >=1 pair")
	}
	distance := func(a, b Point) float64 {
		return math.Hypot(a.X-b.X, a.Y-b.Y)
	}
	var pairSum float64
	for _, pr := range pairs {
		if pr[0] < 0 || pr[0] >= len(layout) || pr[1] < 0 || pr[1] >= len(layout) {
			return 0, fmt.Errorf("tsne: pair %v out of range", pr)
		}
		pairSum += distance(layout[pr[0]], layout[pr[1]])
	}
	pairMean := pairSum / float64(len(pairs))

	var allSum float64
	var count int
	for i := 0; i < len(layout); i++ {
		for j := i + 1; j < len(layout); j++ {
			allSum += distance(layout[i], layout[j])
			count++
		}
	}
	allMean := allSum / float64(count)
	if allMean == 0 {
		return 0, fmt.Errorf("tsne: degenerate layout (all points identical)")
	}
	return pairMean / allMean, nil
}
