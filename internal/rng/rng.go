// Package rng provides deterministic, seedable pseudo-random number
// generation and the sampling primitives used throughout the Inf2vec
// reproduction: uniform sampling, Fisher-Yates shuffles, weighted sampling
// via alias tables, and the word2vec-style unigram^0.75 negative-sampling
// table.
//
// All generators in this package are deterministic functions of their seed,
// which makes every experiment in the repository reproducible. The core
// generator is xoshiro256**, seeded through splitmix64 as its authors
// recommend; it is small, fast, and of far higher quality than the linear
// congruential generators word2vec itself shipped with.
package rng

import "math"

// RNG is a xoshiro256** pseudo-random generator. The zero value is invalid;
// construct with New. RNG is not safe for concurrent use; give each worker
// goroutine its own generator (see Split).
type RNG struct {
	s [4]uint64
}

// splitmix64 advances a splitmix64 state and returns the next output. It is
// used to spread a single 64-bit seed over xoshiro's 256-bit state.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator seeded from seed. Distinct seeds yield
// independent-looking streams.
func New(seed uint64) *RNG {
	r := &RNG{}
	r.Reseed(seed)
	return r
}

// Reseed re-initializes r in place exactly as New(seed) would, letting
// tight loops that burn through many short-lived streams (one per work
// unit) reuse a single generator instead of allocating one per stream.
func (r *RNG) Reseed(seed uint64) {
	sm := seed
	for i := range r.s {
		r.s[i] = splitmix64(&sm)
	}
	// xoshiro256** requires a nonzero state; splitmix64 of any seed makes an
	// all-zero state astronomically unlikely, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
}

// Split derives a new independent generator from r. It is the supported way
// to hand per-worker generators out of a single experiment seed.
func (r *RNG) Split() *RNG {
	return New(r.Uint64() ^ 0xa5a5a5a5deadbeef)
}

// Keyed derives a generator from a base seed and a stream key. Unlike Split
// it consumes no generator state: Keyed(seed, k) is a pure function of its
// arguments, so independent workers can derive the stream for any key in any
// order — the keyed-derivation counterpart of Split for data-parallel work
// (one stream per episode, per shard, ...). The key is diffused through
// splitmix64 before being folded into the seed, so consecutive keys
// (0, 1, 2, ...) land far apart in seed space.
func Keyed(seed, key uint64) *RNG {
	r := &RNG{}
	r.ReseedKeyed(seed, key)
	return r
}

// ReseedKeyed re-initializes r in place exactly as Keyed(seed, key) would;
// the allocation-free counterpart of Keyed, as Reseed is of New.
func (r *RNG) ReseedKeyed(seed, key uint64) {
	sm := key ^ 0x6a09e667f3bcc908 // offset so key 0 does not pass through unmixed
	r.Reseed(seed ^ splitmix64(&sm))
}

// State returns the generator's full 256-bit internal state, for
// checkpointing. Restoring it with SetState resumes the exact stream.
func (r *RNG) State() [4]uint64 {
	return r.s
}

// SetState replaces the generator's internal state with one previously
// captured by State. The all-zero state is invalid for xoshiro256** (the
// stream would be constant zero); it is replaced by a fixed nonzero state so
// a corrupt checkpoint can degrade but never wedge the generator.
func (r *RNG) SetState(s [4]uint64) {
	if s[0]|s[1]|s[2]|s[3] == 0 {
		s[0] = 0x9e3779b97f4a7c15
	}
	r.s = s
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded sampling, without the rejection
	// refinement: the bias for n << 2^64 is negligible for simulation use.
	hi, _ := mul64(r.Uint64(), uint64(n))
	return int(hi)
}

// Int31n returns a uniform int32 in [0, n). It panics if n <= 0.
func (r *RNG) Int31n(n int32) int32 {
	return int32(r.Intn(int(n)))
}

// mul64 returns the 128-bit product of x and y as (hi, lo).
func mul64(x, y uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	x0, x1 := x&mask32, x>>32
	y0, y1 := y&mask32, y>>32
	w0 := x0 * y0
	t := x1*y0 + w0>>32
	w1 := t&mask32 + x0*y1
	hi = x1*y1 + t>>32 + w1>>32
	lo = x * y
	return
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Float32 returns a uniform float32 in [0, 1).
func (r *RNG) Float32() float32 {
	return float32(r.Uint64()>>40) * (1.0 / (1 << 24))
}

// NormFloat64 returns a standard normal variate using the Marsaglia polar
// method.
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// ExpFloat64 returns an exponential variate with rate 1 (mean 1).
func (r *RNG) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Perm returns a uniformly random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.ShuffleInts(p)
	return p
}

// ShuffleInts permutes p uniformly at random in place (Fisher-Yates).
func (r *RNG) ShuffleInts(p []int) {
	for i := len(p) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}

// ShuffleInt32s permutes p uniformly at random in place.
func (r *RNG) ShuffleInt32s(p []int32) {
	for i := len(p) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}

// Shuffle permutes n elements in place using the provided swap function.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Bernoulli returns true with probability p.
func (r *RNG) Bernoulli(p float64) bool {
	return r.Float64() < p
}

// Pareto returns a Pareto(xm, alpha) variate: xm * U^(-1/alpha). Used by the
// synthetic data generator to plant heavy-tailed influence abilities.
func (r *RNG) Pareto(xm, alpha float64) float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return xm * math.Pow(u, -1/alpha)
		}
	}
}
