package rng

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestNewAliasRejectsBadWeights(t *testing.T) {
	cases := [][]float64{
		nil,
		{},
		{0, 0, 0},
		{1, -1},
		{math.NaN()},
		{math.Inf(1)},
	}
	for _, w := range cases {
		if _, err := NewAlias(w); !errors.Is(err, ErrBadWeights) {
			t.Errorf("NewAlias(%v): err = %v, want ErrBadWeights", w, err)
		}
	}
}

func TestAliasMatchesDistribution(t *testing.T) {
	weights := []float64{1, 2, 3, 0, 4}
	a, err := NewAlias(weights)
	if err != nil {
		t.Fatal(err)
	}
	r := New(31)
	const draws = 200000
	counts := make([]int, len(weights))
	for i := 0; i < draws; i++ {
		counts[a.Sample(r)]++
	}
	var sum float64
	for _, w := range weights {
		sum += w
	}
	for i, w := range weights {
		want := w / sum
		got := float64(counts[i]) / draws
		if math.Abs(got-want) > 0.005 {
			t.Errorf("outcome %d: frequency %v, want %v", i, got, want)
		}
	}
	if counts[3] != 0 {
		t.Errorf("zero-weight outcome sampled %d times", counts[3])
	}
}

func TestAliasSingleOutcome(t *testing.T) {
	a, err := NewAlias([]float64{5})
	if err != nil {
		t.Fatal(err)
	}
	r := New(1)
	for i := 0; i < 100; i++ {
		if got := a.Sample(r); got != 0 {
			t.Fatalf("Sample = %d, want 0", got)
		}
	}
}

// Property: for any positive weight vector, all samples land in range and
// strictly-zero weights are never drawn.
func TestAliasSampleInRange(t *testing.T) {
	f := func(seed uint64, raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		w := make([]float64, len(raw))
		var sum float64
		for i, v := range raw {
			w[i] = float64(v)
			sum += w[i]
		}
		if sum == 0 {
			return true
		}
		a, err := NewAlias(w)
		if err != nil {
			return false
		}
		r := New(seed)
		for i := 0; i < 100; i++ {
			idx := a.Sample(r)
			if idx < 0 || int(idx) >= len(w) || w[idx] == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestUnigramTablePower(t *testing.T) {
	counts := []int64{1, 16}
	// With power 0.75 the ratio should be 16^0.75 : 1 = 8 : 1.
	u, err := NewUnigramTable(counts, 0.75)
	if err != nil {
		t.Fatal(err)
	}
	r := New(41)
	const draws = 200000
	n1 := 0
	for i := 0; i < draws; i++ {
		if u.Sample(r) == 1 {
			n1++
		}
	}
	got := float64(n1) / float64(draws-n1)
	if math.Abs(got-8) > 0.5 {
		t.Errorf("unigram^0.75 ratio = %v, want ~8", got)
	}
}

func TestUnigramTableUniformPower(t *testing.T) {
	counts := []int64{100, 1, 50, 7}
	u, err := NewUnigramTable(counts, 0)
	if err != nil {
		t.Fatal(err)
	}
	r := New(43)
	const draws = 100000
	buckets := make([]int, len(counts))
	for i := 0; i < draws; i++ {
		buckets[u.Sample(r)]++
	}
	want := float64(draws) / float64(len(counts))
	for i, c := range buckets {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Errorf("power=0 bucket %d: got %d, want ~%.0f", i, c, want)
		}
	}
}

func TestUnigramTableZeroCountsGetFloor(t *testing.T) {
	counts := []int64{0, 1000, 0}
	u, err := NewUnigramTable(counts, 0.75)
	if err != nil {
		t.Fatal(err)
	}
	r := New(47)
	seen := map[int32]bool{}
	for i := 0; i < 200000; i++ {
		seen[u.Sample(r)] = true
	}
	for i := int32(0); i < 3; i++ {
		if !seen[i] {
			t.Errorf("outcome %d never sampled despite floor", i)
		}
	}
}

func TestUnigramTableAllZero(t *testing.T) {
	u, err := NewUnigramTable([]int64{0, 0, 0}, 0.75)
	if err != nil {
		t.Fatal(err)
	}
	r := New(53)
	buckets := make([]int, 3)
	for i := 0; i < 30000; i++ {
		buckets[u.Sample(r)]++
	}
	for i, c := range buckets {
		if c < 8000 {
			t.Errorf("all-zero counts should be uniform; bucket %d = %d", i, c)
		}
	}
}

func TestUnigramTableRejectsNegative(t *testing.T) {
	if _, err := NewUnigramTable([]int64{1, -2}, 0.75); !errors.Is(err, ErrBadWeights) {
		t.Errorf("err = %v, want ErrBadWeights", err)
	}
	if _, err := NewUnigramTable(nil, 0.75); !errors.Is(err, ErrBadWeights) {
		t.Errorf("err = %v, want ErrBadWeights", err)
	}
}

func BenchmarkAliasSample(b *testing.B) {
	w := make([]float64, 100000)
	r := New(1)
	for i := range w {
		w[i] = r.Float64()
	}
	a, err := NewAlias(w)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Sample(r)
	}
}
