package rng

import (
	"errors"
	"fmt"
	"math"
)

// ErrBadWeights is returned when an alias table is built from weights that
// are empty, negative, NaN, or sum to zero.
var ErrBadWeights = errors.New("rng: weights must be non-empty, finite, non-negative, and not all zero")

// Alias is Walker's alias method for O(1) sampling from a fixed discrete
// distribution. Building is O(n); each Sample is two random numbers and one
// comparison. It is the workhorse behind weighted negative sampling and the
// synthetic data generator's preferential attachment.
//
// An Alias table is immutable after construction and safe for concurrent
// Sample calls (each call uses the caller-supplied RNG for state).
type Alias struct {
	prob  []float64
	alias []int32
}

// NewAlias builds an alias table over weights. The weights need not be
// normalized. Entries with zero weight are never sampled.
func NewAlias(weights []float64) (*Alias, error) {
	n := len(weights)
	if n == 0 {
		return nil, ErrBadWeights
	}
	var sum float64
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("%w: weights[%d] = %v", ErrBadWeights, i, w)
		}
		sum += w
	}
	if sum == 0 {
		return nil, ErrBadWeights
	}

	a := &Alias{
		prob:  make([]float64, n),
		alias: make([]int32, n),
	}
	// Scaled probabilities; split into under- and over-full buckets.
	scaled := make([]float64, n)
	small := make([]int32, 0, n)
	large := make([]int32, 0, n)
	for i, w := range weights {
		scaled[i] = w * float64(n) / sum
		if scaled[i] < 1 {
			small = append(small, int32(i))
		} else {
			large = append(large, int32(i))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		a.prob[s] = scaled[s]
		a.alias[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	// Remaining buckets are (numerically) exactly full.
	for _, l := range large {
		a.prob[l] = 1
		a.alias[l] = l
	}
	for _, s := range small {
		a.prob[s] = 1
		a.alias[s] = s
	}
	return a, nil
}

// Len returns the number of outcomes.
func (a *Alias) Len() int { return len(a.prob) }

// Sample draws one index from the table's distribution using r.
func (a *Alias) Sample(r *RNG) int32 {
	i := int32(r.Intn(len(a.prob)))
	if r.Float64() < a.prob[i] {
		return i
	}
	return a.alias[i]
}

// UnigramTable is the word2vec-style negative-sampling distribution: outcome
// i is drawn proportionally to count[i]^power (power 0.75 in word2vec; power
// 0 yields the uniform distribution the Inf2vec paper describes). It is an
// alias table underneath, so sampling is O(1).
type UnigramTable struct {
	alias *Alias
}

// NewUnigramTable builds a table over counts raised to power. Outcomes with
// zero count still receive a tiny floor weight so that every node can appear
// as a negative sample — without the floor, nodes never observed as context
// would keep their random initializations forever.
func NewUnigramTable(counts []int64, power float64) (*UnigramTable, error) {
	if len(counts) == 0 {
		return nil, ErrBadWeights
	}
	w := make([]float64, len(counts))
	var total float64
	for i, c := range counts {
		if c < 0 {
			return nil, fmt.Errorf("%w: counts[%d] = %d", ErrBadWeights, i, c)
		}
		w[i] = math.Pow(float64(c), power)
		total += w[i]
	}
	if total == 0 {
		// All-zero counts: fall back to uniform.
		for i := range w {
			w[i] = 1
		}
	} else {
		floor := total / float64(len(counts)) * 1e-3
		for i := range w {
			if w[i] < floor {
				w[i] = floor
			}
		}
	}
	a, err := NewAlias(w)
	if err != nil {
		return nil, err
	}
	return &UnigramTable{alias: a}, nil
}

// Sample draws one outcome index.
func (t *UnigramTable) Sample(r *RNG) int32 { return t.alias.Sample(r) }

// Len returns the number of outcomes.
func (t *UnigramTable) Len() int { return t.alias.Len() }
