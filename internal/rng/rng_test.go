package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewDeterministic(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestNewDistinctSeeds(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("distinct seeds produced %d identical draws out of 64", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	child := parent.Split()
	if child == parent {
		t.Fatal("Split returned the parent")
	}
	// The child stream should not replicate the parent stream.
	p, c := New(7), child
	same := 0
	for i := 0; i < 64; i++ {
		if p.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 4 {
		t.Fatalf("child stream tracks parent: %d/64 matches", same)
	}
}

func TestKeyedDeterministic(t *testing.T) {
	a, b := Keyed(42, 7), Keyed(42, 7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same (seed, key) diverged at draw %d", i)
		}
	}
}

func TestKeyedIndependence(t *testing.T) {
	// Streams for distinct keys under one seed, distinct seeds under one key,
	// and key 0 versus the plain seeded stream must all decorrelate.
	pairs := [][2]*RNG{
		{Keyed(42, 0), Keyed(42, 1)},
		{Keyed(42, 1), Keyed(42, 2)},
		{Keyed(1, 5), Keyed(2, 5)},
		{Keyed(42, 0), New(42)},
	}
	for pi, p := range pairs {
		same := 0
		for i := 0; i < 64; i++ {
			if p[0].Uint64() == p[1].Uint64() {
				same++
			}
		}
		if same > 0 {
			t.Errorf("pair %d: %d/64 identical draws between supposedly independent streams", pi, same)
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := New(3)
	for _, n := range []int{1, 2, 3, 10, 1000, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := New(11)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: got %d, want ~%.0f", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	var sum float64
	const draws = 100000
	for i := 0; i < draws; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", v)
		}
		sum += v
	}
	if mean := sum / draws; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestFloat32Range(t *testing.T) {
	r := New(5)
	for i := 0; i < 10000; i++ {
		if v := r.Float32(); v < 0 || v >= 1 {
			t.Fatalf("Float32 = %v out of [0,1)", v)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(9)
	const draws = 200000
	var sum, sumSq float64
	for i := 0; i < draws; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / draws
	variance := sumSq/draws - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := New(13)
	const draws = 200000
	var sum float64
	for i := 0; i < draws; i++ {
		v := r.ExpFloat64()
		if v < 0 {
			t.Fatalf("ExpFloat64 = %v < 0", v)
		}
		sum += v
	}
	if mean := sum / draws; math.Abs(mean-1) > 0.02 {
		t.Errorf("exponential mean = %v, want ~1", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(17)
	for _, n := range []int{0, 1, 2, 5, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShufflePreservesElements(t *testing.T) {
	f := func(seed uint64, raw []int32) bool {
		r := New(seed)
		cp := append([]int32(nil), raw...)
		r.ShuffleInt32s(cp)
		counts := map[int32]int{}
		for _, v := range raw {
			counts[v]++
		}
		for _, v := range cp {
			counts[v]--
		}
		for _, c := range counts {
			if c != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBernoulliExtremes(t *testing.T) {
	r := New(19)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestParetoTail(t *testing.T) {
	r := New(23)
	const draws = 50000
	exceed := 0
	for i := 0; i < draws; i++ {
		v := r.Pareto(1, 2)
		if v < 1 {
			t.Fatalf("Pareto(1,2) = %v below xm", v)
		}
		if v > 10 {
			exceed++
		}
	}
	// P(X > 10) = (1/10)^2 = 0.01 for Pareto(1, 2).
	got := float64(exceed) / draws
	if math.Abs(got-0.01) > 0.005 {
		t.Errorf("tail mass P(X>10) = %v, want ~0.01", got)
	}
}

func TestStateRoundTrip(t *testing.T) {
	r := New(99)
	for i := 0; i < 17; i++ {
		r.Uint64()
	}
	st := r.State()
	want := []uint64{r.Uint64(), r.Uint64(), r.Uint64()}

	r2 := New(0)
	r2.SetState(st)
	for i, w := range want {
		if got := r2.Uint64(); got != w {
			t.Fatalf("restored stream diverged at draw %d: got %d, want %d", i, got, w)
		}
	}
}

func TestSetStateRejectsAllZero(t *testing.T) {
	r := New(1)
	r.SetState([4]uint64{})
	if r.Uint64() == 0 && r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("all-zero state produced the degenerate constant-zero stream")
	}
}
