package datagen

import (
	"testing"

	"inf2vec/internal/diffusion"
	"inf2vec/internal/eval"
	"inf2vec/internal/stats"
)

// small returns a fast config for unit tests.
func small(seed uint64) Config {
	cfg := DiggLike(seed)
	cfg.Name = "small"
	cfg.NumUsers = 300
	cfg.NumItems = 60
	return cfg
}

func TestValidate(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.NumUsers = 1 },
		func(c *Config) { c.NumItems = 0 },
		func(c *Config) { c.EdgesPerUser = 0 },
		func(c *Config) { c.Reciprocity = -0.1 },
		func(c *Config) { c.NumTopics = 0 },
		func(c *Config) { c.InterestSharpness = 0 },
		func(c *Config) { c.InterestSharpness = 1.5 },
		func(c *Config) { c.AbilityAlpha = 0 },
		func(c *Config) { c.BaseInfluence = -1 },
		func(c *Config) { c.MaxEdgeProb = 0 },
		func(c *Config) { c.SpontaneousRate = 2 },
		func(c *Config) { c.MeanDelay = 0 },
	}
	for i, mutate := range bad {
		cfg := small(1)
		mutate(&cfg)
		if _, err := Generate(cfg); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestGenerateShape(t *testing.T) {
	ds, err := Generate(small(1))
	if err != nil {
		t.Fatal(err)
	}
	if ds.Graph.NumNodes() != 300 {
		t.Fatalf("nodes = %d, want 300", ds.Graph.NumNodes())
	}
	if ds.Graph.NumEdges() == 0 {
		t.Fatal("no edges generated")
	}
	if ds.Log.NumUsers() != 300 {
		t.Fatalf("log universe = %d", ds.Log.NumUsers())
	}
	if ds.Log.NumEpisodes() == 0 || ds.Log.NumActions() == 0 {
		t.Fatal("empty action log")
	}
	if len(ds.Interest) != 300 || len(ds.ItemTopic) != 60 {
		t.Fatal("interest/topic tables missized")
	}
	for _, row := range ds.Interest[:5] {
		var sum float64
		for _, w := range row {
			sum += w
		}
		if sum < 0.99 || sum > 1.01 {
			t.Fatalf("interest row sums to %v, want 1", sum)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(small(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(small(7))
	if err != nil {
		t.Fatal(err)
	}
	if a.Graph.NumEdges() != b.Graph.NumEdges() || a.Log.NumActions() != b.Log.NumActions() {
		t.Fatal("same-seed generation diverged")
	}
	c, err := Generate(small(8))
	if err != nil {
		t.Fatal(err)
	}
	if a.Log.NumActions() == c.Log.NumActions() && a.Graph.NumEdges() == c.Graph.NumEdges() {
		t.Log("warning: different seeds produced identical shapes (possible but unlikely)")
	}
}

func TestPlantedProbsInRange(t *testing.T) {
	ds, err := Generate(small(2))
	if err != nil {
		t.Fatal(err)
	}
	ds.Graph.Edges(func(u, v int32) bool {
		p := ds.TrueProbs.Prob(u, v)
		if p < 0 || p > ds.Config.MaxEdgeProb {
			t.Fatalf("planted P(%d,%d) = %v outside [0,%v]", u, v, p, ds.Config.MaxEdgeProb)
		}
		return true
	})
}

// TestStatisticalShape verifies the three §III observations the generator
// must reproduce: heavy-tailed source/target frequencies and a large
// zero-influence mass in the Figure 3 CDF.
func TestStatisticalShape(t *testing.T) {
	ds, err := Generate(DiggLike(3))
	if err != nil {
		t.Fatal(err)
	}
	pc := diffusion.CountPairs(ds.Graph, ds.Log)
	if pc.Total() == 0 {
		t.Fatal("no influence pairs generated")
	}
	srcDist := stats.FrequencyDistribution(pc.SourceFrequencies())
	slope, err := stats.LogLogSlope(srcDist)
	if err != nil {
		t.Fatal(err)
	}
	if slope >= -0.3 {
		t.Errorf("source frequency log-log slope = %v, want clearly negative (heavy tail)", slope)
	}
	tgtDist := stats.FrequencyDistribution(pc.TargetFrequencies())
	slope, err = stats.LogLogSlope(tgtDist)
	if err != nil {
		t.Fatal(err)
	}
	if slope >= -0.3 {
		t.Errorf("target frequency log-log slope = %v, want clearly negative", slope)
	}

	counts := eval.PriorActiveFriendCounts(ds.Graph, ds.Log)
	cdf := stats.NewCDF(counts)
	zeroMass := cdf.At(0)
	if zeroMass < 0.5 || zeroMass > 0.9 {
		t.Errorf("digg-like CDF(0) = %v, want in [0.5,0.9] (paper: ~0.7)", zeroMass)
	}
}

func TestFlickrLikeDenser(t *testing.T) {
	digg, err := Generate(small(4))
	if err != nil {
		t.Fatal(err)
	}
	fcfg := FlickrLike(4)
	fcfg.NumUsers = 300
	fcfg.NumItems = 60
	flickr, err := Generate(fcfg)
	if err != nil {
		t.Fatal(err)
	}
	dDeg := float64(digg.Graph.NumEdges()) / float64(digg.Graph.NumNodes())
	fDeg := float64(flickr.Graph.NumEdges()) / float64(flickr.Graph.NumNodes())
	if fDeg <= dDeg {
		t.Errorf("flickr-like density %v not above digg-like %v", fDeg, dDeg)
	}
}

func TestEpisodesChronological(t *testing.T) {
	ds, err := Generate(small(5))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < ds.Log.NumEpisodes(); i++ {
		e := ds.Log.Episode(i)
		for j := 1; j < e.Len(); j++ {
			if e.Records[j].Time < e.Records[j-1].Time {
				t.Fatalf("episode %d out of order", i)
			}
		}
	}
}
