// Package datagen synthesizes social networks and action logs that stand in
// for the paper's Digg and Flickr datasets, which cannot be downloaded in
// this offline environment (see DESIGN.md §1 for the substitution
// rationale).
//
// The generator plants exactly the structure the paper's §III observations
// describe and the Inf2vec model exploits:
//
//   - a directed social graph grown by preferential attachment, giving the
//     heavy-tailed degree distributions behind Figures 1 and 2;
//   - ground-truth edge influence probabilities P_uv = base · ability(u) ·
//     conformity(v), with Pareto-distributed abilities, so some users are
//     extremely influential (Figure 1's tail);
//   - topic-based user interests, so users with similar interests adopt the
//     same items without any influence — the "70% of adoptions happen with
//     zero previously-active friends" mass at x=0 of Figure 3;
//   - action logs produced by simulating, per item, spontaneous
//     interest-driven adoptions followed by an independent-cascade
//     propagation over the planted probabilities with exponential delays.
//
// Because both an influence channel and an interest channel exist in the
// log, a method using only one of them (pure IC learners; pure
// similarity MF) recovers only part of the signal — which is precisely the
// experimental contrast the paper's Tables II and III demonstrate.
package datagen

import (
	"container/heap"
	"fmt"
	"math"

	"inf2vec/internal/actionlog"
	"inf2vec/internal/graph"
	"inf2vec/internal/ic"
	"inf2vec/internal/rng"
)

// Config parameterizes dataset synthesis.
type Config struct {
	// Name labels the dataset in reports ("digg-like", "flickr-like").
	Name string
	// NumUsers and NumItems size the universe.
	NumUsers int32
	NumItems int32
	// EdgesPerUser is the mean out-degree of the preferential-attachment
	// graph.
	EdgesPerUser int
	// Reciprocity is the probability a generated edge also gets its
	// reverse (social ties are often mutual).
	Reciprocity float64
	// NumTopics is the number of interest topics.
	NumTopics int
	// InterestSharpness in (0,1] is the weight a user puts on their primary
	// topic; the remainder spreads uniformly.
	InterestSharpness float64
	// AbilityAlpha is the Pareto shape of user influence ability; smaller
	// means heavier tail (more extreme influencers).
	AbilityAlpha float64
	// AbilityCap truncates the Pareto ability draws. The cap keeps a single
	// super-influencer hub from flipping the whole cascade regime, which
	// keeps dataset character stable across seeds while preserving the
	// heavy tail below the cap.
	AbilityCap float64
	// BaseInfluence scales the planted probability of ordinary (weak-tie)
	// edges.
	BaseInfluence float64
	// StrongTieFraction scales the probability that an edge is a strong
	// tie; a source's strong-tie odds are StrongTieFraction times its
	// ability, so influential users hold more strong ties (heavy-tailed
	// source frequencies, Figure 1). Without strong ties every edge is
	// near-zero and no learner — ST, EM or Inf2vec — has anything to
	// recover.
	StrongTieFraction float64
	// StrongTieProb is the planted probability scale of strong-tie edges.
	StrongTieProb float64
	// MaxEdgeProb caps the planted edge probabilities.
	MaxEdgeProb float64
	// SpontaneousRate is the per-user, per-item probability scale of
	// adopting without influence (multiplied by the user's interest in the
	// item's topic and the user's activity level).
	SpontaneousRate float64
	// ActivityAlpha is the Pareto shape of per-user activity levels —
	// heavy-tailed adoption propensity, like real Digg's super-voters. The
	// draws are capped at ActivityCap and normalized to mean 1 so the
	// expected action volume stays put.
	ActivityAlpha float64
	ActivityCap   float64
	// MeanDelay is the mean of the exponential propagation delay.
	MeanDelay float64
	// ObservationRate is the probability that an adoption makes it into
	// the recorded action log. Real vote/favorite logs are partial views
	// of the underlying adoption process; partial observability is one of
	// the sparsity sources the paper argues edge-wise estimators handle
	// poorly (an unobserved success looks like a failed trial to them).
	ObservationRate float64
	// Seed drives the full generation.
	Seed uint64
}

// DiggLike returns the configuration whose synthetic log mirrors the Digg
// dataset's character: moderate density, strong interest channel (~70% of
// adoptions have no previously-active friend, Figure 3).
func DiggLike(seed uint64) Config {
	return Config{
		Name:              "digg-like",
		NumUsers:          2000,
		NumItems:          450,
		EdgesPerUser:      8,
		Reciprocity:       0.3,
		NumTopics:         10,
		InterestSharpness: 0.78,
		AbilityAlpha:      1.6,
		AbilityCap:        15,
		BaseInfluence:     0.003,
		StrongTieFraction: 0.032,
		StrongTieProb:     0.3,
		MaxEdgeProb:       0.8,
		SpontaneousRate:   0.02,
		ActivityAlpha:     1.4,
		ActivityCap:       12,
		MeanDelay:         1,
		ObservationRate:   0.75,
		Seed:              seed,
	}
}

// FlickrLike returns the configuration mirroring the Flickr dataset's
// character: much denser graph, stronger influence share (~50% of adoptions
// follow an active friend) but a weaker per-episode signal, yielding the
// paper's lower absolute metric values.
func FlickrLike(seed uint64) Config {
	return Config{
		Name:              "flickr-like",
		NumUsers:          2500,
		NumItems:          400,
		EdgesPerUser:      20,
		Reciprocity:       0.5,
		NumTopics:         16,
		InterestSharpness: 0.6,
		AbilityAlpha:      1.8,
		AbilityCap:        15,
		BaseInfluence:     0.0015,
		StrongTieFraction: 0.018,
		StrongTieProb:     0.28,
		MaxEdgeProb:       0.6,
		SpontaneousRate:   0.015,
		ActivityAlpha:     1.4,
		ActivityCap:       12,
		MeanDelay:         1,
		ObservationRate:   0.8,
		Seed:              seed,
	}
}

// Dataset is a generated social network with its action log and the planted
// ground truth.
type Dataset struct {
	Config Config
	Graph  *graph.Graph
	Log    *actionlog.Log
	// TrueProbs is the planted edge influence probability (hidden from the
	// learners; available to verify recovery).
	TrueProbs *ic.EdgeProbs
	// Interest[u][z] is user u's affinity for topic z (rows sum to 1).
	Interest [][]float64
	// Activity[u] is user u's adoption propensity (mean 1, heavy-tailed).
	Activity []float64
	// ItemTopic[i] is item i's topic.
	ItemTopic []int
}

// validate rejects out-of-range parameters.
func (cfg Config) validate() error {
	switch {
	case cfg.NumUsers < 2:
		return fmt.Errorf("datagen: NumUsers %d < 2", cfg.NumUsers)
	case cfg.NumItems < 1:
		return fmt.Errorf("datagen: NumItems %d < 1", cfg.NumItems)
	case cfg.EdgesPerUser < 1:
		return fmt.Errorf("datagen: EdgesPerUser %d < 1", cfg.EdgesPerUser)
	case cfg.Reciprocity < 0 || cfg.Reciprocity > 1:
		return fmt.Errorf("datagen: Reciprocity %v outside [0,1]", cfg.Reciprocity)
	case cfg.NumTopics < 1:
		return fmt.Errorf("datagen: NumTopics %d < 1", cfg.NumTopics)
	case cfg.InterestSharpness <= 0 || cfg.InterestSharpness > 1:
		return fmt.Errorf("datagen: InterestSharpness %v outside (0,1]", cfg.InterestSharpness)
	case cfg.AbilityAlpha <= 0:
		return fmt.Errorf("datagen: AbilityAlpha %v must be positive", cfg.AbilityAlpha)
	case cfg.AbilityCap <= 1:
		return fmt.Errorf("datagen: AbilityCap %v must exceed 1", cfg.AbilityCap)
	case cfg.BaseInfluence < 0 || cfg.BaseInfluence > 1:
		return fmt.Errorf("datagen: BaseInfluence %v outside [0,1]", cfg.BaseInfluence)
	case cfg.StrongTieFraction < 0 || cfg.StrongTieFraction > 1:
		return fmt.Errorf("datagen: StrongTieFraction %v outside [0,1]", cfg.StrongTieFraction)
	case cfg.StrongTieProb < 0 || cfg.StrongTieProb > 1:
		return fmt.Errorf("datagen: StrongTieProb %v outside [0,1]", cfg.StrongTieProb)
	case cfg.MaxEdgeProb <= 0 || cfg.MaxEdgeProb > 1:
		return fmt.Errorf("datagen: MaxEdgeProb %v outside (0,1]", cfg.MaxEdgeProb)
	case cfg.SpontaneousRate < 0 || cfg.SpontaneousRate > 1:
		return fmt.Errorf("datagen: SpontaneousRate %v outside [0,1]", cfg.SpontaneousRate)
	case cfg.ActivityAlpha <= 0:
		return fmt.Errorf("datagen: ActivityAlpha %v must be positive", cfg.ActivityAlpha)
	case cfg.ActivityCap <= 1:
		return fmt.Errorf("datagen: ActivityCap %v must exceed 1", cfg.ActivityCap)
	case cfg.MeanDelay <= 0:
		return fmt.Errorf("datagen: MeanDelay %v must be positive", cfg.MeanDelay)
	case cfg.ObservationRate <= 0 || cfg.ObservationRate > 1:
		return fmt.Errorf("datagen: ObservationRate %v outside (0,1]", cfg.ObservationRate)
	}
	return nil
}

// Generate synthesizes a dataset from cfg.
func Generate(cfg Config) (*Dataset, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	root := rng.New(cfg.Seed)

	g, err := preferentialAttachment(cfg, root.Split())
	if err != nil {
		return nil, err
	}
	ds := &Dataset{Config: cfg, Graph: g}

	// Planted influence parameters.
	abilities := make([]float64, cfg.NumUsers)
	conformities := make([]float64, cfg.NumUsers)
	abilityRNG := root.Split()
	for u := range abilities {
		abilities[u] = abilityRNG.Pareto(1, cfg.AbilityAlpha)
		if abilities[u] > cfg.AbilityCap {
			abilities[u] = cfg.AbilityCap
		}
		conformities[u] = 0.5 + abilityRNG.Float64() // in [0.5, 1.5)
	}
	// Interests and item topics.
	interestRNG := root.Split()
	ds.Interest = make([][]float64, cfg.NumUsers)
	rest := (1 - cfg.InterestSharpness) / float64(cfg.NumTopics)
	for u := range ds.Interest {
		row := make([]float64, cfg.NumTopics)
		primary := interestRNG.Intn(cfg.NumTopics)
		for z := range row {
			row[z] = rest
		}
		row[primary] += cfg.InterestSharpness
		ds.Interest[u] = row
	}
	ds.ItemTopic = make([]int, cfg.NumItems)
	for i := range ds.ItemTopic {
		ds.ItemTopic[i] = interestRNG.Intn(cfg.NumTopics)
	}
	ds.Activity = make([]float64, cfg.NumUsers)
	var actSum float64
	for u := range ds.Activity {
		a := interestRNG.Pareto(1, cfg.ActivityAlpha)
		if a > cfg.ActivityCap {
			a = cfg.ActivityCap
		}
		ds.Activity[u] = a
		actSum += a
	}
	actMean := actSum / float64(cfg.NumUsers)
	for u := range ds.Activity {
		ds.Activity[u] /= actMean
	}

	// Planted edge probabilities. Strong-tie odds scale with the source's
	// ability AND the endpoints' interest similarity (homophily): influence
	// concentrates inside interest communities, which is what lets an
	// embedding generalize influence to edges without observed propagation
	// — the paper's central argument — while an edge-wise MLE cannot.
	ds.TrueProbs = ic.NewEdgeProbs(g)
	edgeRNG := root.Split()
	g.Edges(func(u, v int32) bool {
		var p float64
		homophily := 0.0
		for z := 0; z < cfg.NumTopics; z++ {
			homophily += ds.Interest[u][z] * ds.Interest[v][z]
		}
		// Square-root damping keeps a meaningful share of strong ties
		// crossing topic boundaries: cross-topic cascades are the influence
		// evidence that pure-similarity models cannot explain, while
		// same-topic ties remain several times likelier (homophily).
		homophily = math.Sqrt(homophily * float64(cfg.NumTopics))
		strongOdds := cfg.StrongTieFraction * abilities[u] * homophily
		if edgeRNG.Float64() < strongOdds {
			p = cfg.StrongTieProb * conformities[v]
		} else {
			p = cfg.BaseInfluence * conformities[v]
		}
		if p > cfg.MaxEdgeProb {
			p = cfg.MaxEdgeProb
		}
		// Set cannot fail: (u,v) is a real edge and p is clamped.
		if err := ds.TrueProbs.Set(u, v, p); err != nil {
			panic(err)
		}
		return true
	})

	// Episode simulation.
	episodeRNG := root.Split()
	var actions []actionlog.Action
	for item := int32(0); item < cfg.NumItems; item++ {
		actions = simulateEpisode(ds, item, episodeRNG, actions)
	}
	if cfg.ObservationRate < 1 {
		kept := actions[:0]
		for _, a := range actions {
			if episodeRNG.Float64() < cfg.ObservationRate {
				kept = append(kept, a)
			}
		}
		actions = kept
	}
	log, err := actionlog.FromActions(cfg.NumUsers, actions)
	if err != nil {
		return nil, fmt.Errorf("datagen: assembling log: %w", err)
	}
	ds.Log = log
	return ds, nil
}

// preferentialAttachment grows a directed graph: each new node u links to
// EdgesPerUser existing nodes chosen proportionally to indegree+1, each
// link reversed with probability Reciprocity.
func preferentialAttachment(cfg Config, r *rng.RNG) (*graph.Graph, error) {
	b := graph.NewBuilder(cfg.NumUsers)
	// pool holds a sampling pool: node IDs repeated by attachment weight,
	// the classic Barabási–Albert trick.
	pool := make([]int32, 0, int(cfg.NumUsers)*(cfg.EdgesPerUser+1))
	pool = append(pool, 0)
	for u := int32(1); u < cfg.NumUsers; u++ {
		m := cfg.EdgesPerUser
		if int(u) < m {
			m = int(u)
		}
		for e := 0; e < m; e++ {
			// Mix preferential attachment with uniform attachment: pure PA
			// grows hubs whose reciprocal out-degree lets single nodes flip
			// the cascade regime between seeds.
			var t int32
			if r.Bernoulli(0.5) {
				t = pool[r.Intn(len(pool))]
			} else {
				t = int32(r.Intn(int(u)))
			}
			if t == u {
				continue
			}
			if err := b.AddEdge(u, t); err != nil {
				return nil, err
			}
			if r.Bernoulli(cfg.Reciprocity) {
				if err := b.AddEdge(t, u); err != nil {
					return nil, err
				}
			}
			pool = append(pool, t)
		}
		pool = append(pool, u)
	}
	return b.Build(), nil
}

// adoption is a scheduled adoption event in the cascade simulation.
type adoption struct {
	time float64
	user int32
}

type adoptionHeap []adoption

func (h adoptionHeap) Len() int           { return len(h) }
func (h adoptionHeap) Less(i, j int) bool { return h[i].time < h[j].time }
func (h adoptionHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *adoptionHeap) Push(x any)        { *h = append(*h, x.(adoption)) }
func (h *adoptionHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// simulateEpisode generates one item's adoptions: spontaneous
// interest-driven seeds over a time window, then IC propagation with
// exponential delays, processed in global time order so late spontaneous
// adopters can still be counted as influenced when a friend beat them to
// it (matching how the paper's assumption reads real logs).
func simulateEpisode(ds *Dataset, item int32, r *rng.RNG, actions []actionlog.Action) []actionlog.Action {
	cfg := ds.Config
	topic := ds.ItemTopic[item]

	var h adoptionHeap
	// Spontaneous adoptions: interest-weighted Bernoulli per user, uniform
	// times over [0, 10).
	for u := int32(0); u < cfg.NumUsers; u++ {
		p := cfg.SpontaneousRate * ds.Interest[u][topic] * float64(cfg.NumTopics) * ds.Activity[u]
		if r.Float64() < p {
			heap.Push(&h, adoption{time: r.Float64() * 10, user: u})
		}
	}
	adopted := make(map[int32]bool)
	for h.Len() > 0 {
		ev := heap.Pop(&h).(adoption)
		if adopted[ev.user] {
			continue
		}
		adopted[ev.user] = true
		actions = append(actions, actionlog.Action{User: ev.user, Item: item, Time: ev.time})
		// Influence attempts on out-neighbors (single chance, IC).
		for _, v := range ds.Graph.OutNeighbors(ev.user) {
			if adopted[v] {
				continue
			}
			if r.Float64() < ds.TrueProbs.Prob(ev.user, v) {
				heap.Push(&h, adoption{time: ev.time + r.ExpFloat64()*cfg.MeanDelay, user: v})
			}
		}
	}
	return actions
}
