package actionlog

import (
	"bytes"
	"strings"
	"testing"
)

func TestReadTSV(t *testing.T) {
	in := "# header\n0\t3\t1.5\n1 3 2.5\n\n0\t4\t7\n"
	l, err := ReadTSV(strings.NewReader(in), 0)
	if err != nil {
		t.Fatal(err)
	}
	if l.NumUsers() != 2 {
		t.Fatalf("NumUsers = %d, want 2 (inferred)", l.NumUsers())
	}
	if l.NumEpisodes() != 2 || l.NumActions() != 3 {
		t.Fatalf("episodes=%d actions=%d", l.NumEpisodes(), l.NumActions())
	}
}

func TestReadTSVExplicitUniverse(t *testing.T) {
	l, err := ReadTSV(strings.NewReader("0\t0\t1\n"), 50)
	if err != nil {
		t.Fatal(err)
	}
	if l.NumUsers() != 50 {
		t.Fatalf("NumUsers = %d, want 50", l.NumUsers())
	}
}

func TestReadTSVErrors(t *testing.T) {
	cases := []string{
		"0\t1\n",     // too few fields
		"x\t1\t2\n",  // bad user
		"0\ty\t2\n",  // bad item
		"0\t1\tz\n",  // bad time
		"0\t-1\t2\n", // negative item caught by FromActions
		"9\t1\t2\n",  // user outside explicit universe
	}
	for i, in := range cases {
		numUsers := int32(0)
		if i == len(cases)-1 {
			numUsers = 5
		}
		if _, err := ReadTSV(strings.NewReader(in), numUsers); err == nil {
			t.Errorf("input %q: expected error", in)
		}
	}
}

func TestTSVRoundTrip(t *testing.T) {
	l, err := FromActions(4, sampleActions())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTSV(&buf, l); err != nil {
		t.Fatal(err)
	}
	l2, err := ReadTSV(&buf, l.NumUsers())
	if err != nil {
		t.Fatal(err)
	}
	if l2.NumActions() != l.NumActions() || l2.NumEpisodes() != l.NumEpisodes() {
		t.Fatalf("round trip changed shape: %d/%d -> %d/%d",
			l.NumEpisodes(), l.NumActions(), l2.NumEpisodes(), l2.NumActions())
	}
	for i := 0; i < l.NumEpisodes(); i++ {
		a, b := l.Episode(i), l2.Episode(i)
		if a.Item != b.Item || a.Len() != b.Len() {
			t.Fatalf("episode %d shape changed", i)
		}
		for j := range a.Records {
			if a.Records[j] != b.Records[j] {
				t.Fatalf("episode %d record %d: %+v != %+v", i, j, a.Records[j], b.Records[j])
			}
		}
	}
}

func TestReadTSVRejectsMaxInt32User(t *testing.T) {
	if _, err := ReadTSV(strings.NewReader("2147483647\t0\t1\n"), 0); err == nil {
		t.Fatal("math.MaxInt32 user id accepted (universe size overflows)")
	}
}
