// Streaming support for the continuous pipeline: Tail/TailTSV read only the
// newline-terminated prefix of an append-only log so a concurrent writer's
// half-appended final line is never consumed, and Cursor persists the resume
// offset (plus the CRC of the model it was published with) durably and
// atomically beside the log. Together they give the crash-safety contract
// the pipeline relies on: after a kill -9 at any instant, re-tailing from
// the stored cursor neither double-counts nor drops an action.
package actionlog

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"inf2vec/internal/atomicfile"
)

// Tail reads actions from r, which must be positioned at absolute byte
// offset from in the underlying log, and returns them together with the
// offset of the first unconsumed byte. Only newline-terminated lines are
// consumed: a final line without a newline — even one that happens to parse,
// since a writer may still be appending digits to it — is left for the next
// call, so the returned offset is always a stable resume point on a line
// boundary. Blank and '#'-comment lines are consumed and skipped. A
// newline-terminated line that fails to parse is a permanent error (the log
// is corrupt, retrying cannot help); the actions and offset accumulated
// before it are still returned.
func Tail(r io.Reader, from int64) ([]Action, int64, error) {
	sc := newLineScanner(r)
	sc.off = from
	var actions []Action
	next := from
	lineNo := 0
	for {
		line, terminated, err := sc.next()
		if errors.Is(err, io.EOF) {
			return actions, next, nil
		}
		if err != nil {
			return actions, next, fmt.Errorf("actionlog: tailing log: %w", err)
		}
		if !terminated {
			return actions, next, nil
		}
		lineNo++
		a, skip, perr := parseLine(line, lineNo)
		if perr != nil {
			return actions, next, fmt.Errorf("actionlog: at byte %d: %w", next, perr)
		}
		if !skip {
			actions = append(actions, a)
		}
		next = sc.off
	}
}

// TailTSV opens path and tails it from byte offset from; see Tail. An offset
// beyond the current file size means the log was truncated or replaced out
// from under the cursor and is reported as an error rather than silently
// re-reading from an arbitrary position.
func TailTSV(path string, from int64) ([]Action, int64, error) {
	if from < 0 {
		return nil, from, fmt.Errorf("actionlog: negative tail offset %d", from)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, from, fmt.Errorf("actionlog: %w", err)
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, from, fmt.Errorf("actionlog: %w", err)
	}
	if from > fi.Size() {
		return nil, from, fmt.Errorf("actionlog: tail offset %d beyond log size %d (log truncated?)", from, fi.Size())
	}
	if _, err := f.Seek(from, io.SeekStart); err != nil {
		return nil, from, fmt.Errorf("actionlog: %w", err)
	}
	return Tail(f, from)
}

// CursorVersion is the current cursor file format version.
const CursorVersion = 1

var cursorMagic = [6]byte{'I', '2', 'V', 'C', 'U', 'R'}

// cursorSize is the fixed on-disk size: magic, version byte, reserved zero
// byte, int64 offset, uint32 model CRC, uint32 CRC trailer.
const cursorSize = 6 + 1 + 1 + 8 + 4 + 4

// ErrBadCursor is returned by LoadCursor when the file exists but is not a
// valid cursor: wrong magic or size, unsupported version, or CRC mismatch.
// Treating it as distinct from fs.ErrNotExist lets a caller log the
// corruption and rebuild from offset zero instead of crashing.
var ErrBadCursor = errors.New("actionlog: not a valid cursor file")

// Cursor is the pipeline's durable resume state: how much of the action log
// the currently published model has consumed, and the CRC-32 (IEEE) of that
// model file so a restart can tell whether an in-flight publish completed.
type Cursor struct {
	// Offset is the first unconsumed byte of the action log.
	Offset int64
	// ModelCRC is the CRC-32 (IEEE) of the complete model file published for
	// this offset; zero when no model has been published yet.
	ModelCRC uint32
}

// SaveCursor atomically and durably writes the cursor to path.
func SaveCursor(path string, c Cursor) error {
	var buf bytes.Buffer
	buf.Write(cursorMagic[:])
	buf.WriteByte(CursorVersion)
	buf.WriteByte(0)
	var body [12]byte
	binary.LittleEndian.PutUint64(body[:8], uint64(c.Offset))
	binary.LittleEndian.PutUint32(body[8:], c.ModelCRC)
	buf.Write(body[:])
	var trailer [4]byte
	binary.LittleEndian.PutUint32(trailer[:], crc32.ChecksumIEEE(buf.Bytes()))
	buf.Write(trailer[:])
	return atomicfile.Write(path, buf.Bytes())
}

// LoadCursor reads a cursor written by SaveCursor, verifying the CRC trailer
// before trusting any field. A missing file is reported verbatim (test with
// errors.Is(err, fs.ErrNotExist)); a present-but-invalid file is reported as
// ErrBadCursor.
func LoadCursor(path string) (Cursor, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return Cursor{}, fmt.Errorf("actionlog: %w", err)
	}
	if len(raw) != cursorSize {
		return Cursor{}, fmt.Errorf("%w: %d bytes, want %d", ErrBadCursor, len(raw), cursorSize)
	}
	if [6]byte(raw[:6]) != cursorMagic {
		return Cursor{}, fmt.Errorf("%w: bad magic %q", ErrBadCursor, raw[:6])
	}
	if raw[6] != CursorVersion || raw[7] != 0 {
		return Cursor{}, fmt.Errorf("%w: unsupported version %d", ErrBadCursor, raw[6])
	}
	body, trailer := raw[:cursorSize-4], raw[cursorSize-4:]
	if got, want := crc32.ChecksumIEEE(body), binary.LittleEndian.Uint32(trailer); got != want {
		return Cursor{}, fmt.Errorf("%w: CRC mismatch (file %08x, computed %08x)", ErrBadCursor, want, got)
	}
	c := Cursor{
		Offset:   int64(binary.LittleEndian.Uint64(body[8:16])),
		ModelCRC: binary.LittleEndian.Uint32(body[16:20]),
	}
	if c.Offset < 0 {
		return Cursor{}, fmt.Errorf("%w: negative offset %d", ErrBadCursor, c.Offset)
	}
	return c, nil
}
