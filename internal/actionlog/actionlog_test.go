package actionlog

import (
	"errors"
	"testing"
	"testing/quick"

	"inf2vec/internal/rng"
)

func sampleActions() []Action {
	return []Action{
		{User: 0, Item: 7, Time: 3},
		{User: 1, Item: 7, Time: 1},
		{User: 2, Item: 7, Time: 2},
		{User: 0, Item: 9, Time: 5},
		{User: 3, Item: 9, Time: 4},
	}
}

func TestFromActionsGroupsAndSorts(t *testing.T) {
	l, err := FromActions(4, sampleActions())
	if err != nil {
		t.Fatal(err)
	}
	if l.NumEpisodes() != 2 {
		t.Fatalf("NumEpisodes = %d, want 2", l.NumEpisodes())
	}
	if l.NumActions() != 5 {
		t.Fatalf("NumActions = %d, want 5", l.NumActions())
	}
	e := l.Episode(0)
	if e.Item != 7 {
		t.Fatalf("episode 0 item = %d, want 7", e.Item)
	}
	wantUsers := []int32{1, 2, 0}
	got := e.Users()
	for i := range wantUsers {
		if got[i] != wantUsers[i] {
			t.Fatalf("episode 7 users = %v, want %v", got, wantUsers)
		}
	}
}

func TestFromActionsCollapsesDuplicates(t *testing.T) {
	l, err := FromActions(2, []Action{
		{User: 0, Item: 1, Time: 10},
		{User: 0, Item: 1, Time: 2}, // earlier duplicate wins
		{User: 1, Item: 1, Time: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	e := l.Episode(0)
	if e.Len() != 2 {
		t.Fatalf("episode length = %d, want 2", e.Len())
	}
	if e.Records[0].User != 0 || e.Records[0].Time != 2 {
		t.Fatalf("first record = %+v, want user 0 at t=2", e.Records[0])
	}
}

func TestFromActionsTieBreaksByUser(t *testing.T) {
	l, err := FromActions(3, []Action{
		{User: 2, Item: 0, Time: 1},
		{User: 1, Item: 0, Time: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	us := l.Episode(0).Users()
	if us[0] != 1 || us[1] != 2 {
		t.Fatalf("tie order = %v, want [1 2]", us)
	}
}

func TestFromActionsValidation(t *testing.T) {
	if _, err := FromActions(0, nil); !errors.Is(err, ErrNoUsers) {
		t.Errorf("numUsers=0: err = %v, want ErrNoUsers", err)
	}
	if _, err := FromActions(2, []Action{{User: 5, Item: 0, Time: 0}}); err == nil {
		t.Error("out-of-range user accepted")
	}
	if _, err := FromActions(2, []Action{{User: 0, Item: -1, Time: 0}}); err == nil {
		t.Error("negative item accepted")
	}
}

func TestFromEpisodesValidation(t *testing.T) {
	good := []Episode{{Item: 0, Records: []Record{{User: 0, Time: 1}, {User: 1, Time: 2}}}}
	if _, err := FromEpisodes(2, good); err != nil {
		t.Errorf("valid episodes rejected: %v", err)
	}
	outOfOrder := []Episode{{Item: 0, Records: []Record{{User: 0, Time: 2}, {User: 1, Time: 1}}}}
	if _, err := FromEpisodes(2, outOfOrder); err == nil {
		t.Error("out-of-order episode accepted")
	}
	dup := []Episode{{Item: 0, Records: []Record{{User: 0, Time: 1}, {User: 0, Time: 2}}}}
	if _, err := FromEpisodes(2, dup); err == nil {
		t.Error("duplicate-user episode accepted")
	}
	oob := []Episode{{Item: 0, Records: []Record{{User: 9, Time: 1}}}}
	if _, err := FromEpisodes(2, oob); err == nil {
		t.Error("out-of-universe user accepted")
	}
}

func TestUserActionCounts(t *testing.T) {
	l, err := FromActions(4, sampleActions())
	if err != nil {
		t.Fatal(err)
	}
	counts := l.UserActionCounts()
	want := []int64{2, 1, 1, 1}
	for i := range want {
		if counts[i] != want[i] {
			t.Fatalf("UserActionCounts = %v, want %v", counts, want)
		}
	}
}

func TestSplitPartitions(t *testing.T) {
	var actions []Action
	for item := int32(0); item < 100; item++ {
		actions = append(actions, Action{User: item % 10, Item: item, Time: 1})
	}
	l, err := FromActions(10, actions)
	if err != nil {
		t.Fatal(err)
	}
	train, tune, test, err := l.Split(7, 0.8, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if train.NumEpisodes() != 80 || tune.NumEpisodes() != 10 || test.NumEpisodes() != 10 {
		t.Fatalf("split sizes = %d/%d/%d, want 80/10/10",
			train.NumEpisodes(), tune.NumEpisodes(), test.NumEpisodes())
	}
	// Partition: every episode appears in exactly one split.
	seen := map[int32]int{}
	for _, part := range []*Log{train, tune, test} {
		part.Episodes(func(e *Episode) { seen[e.Item]++ })
	}
	if len(seen) != 100 {
		t.Fatalf("splits cover %d items, want 100", len(seen))
	}
	for it, c := range seen {
		if c != 1 {
			t.Fatalf("item %d appears in %d splits", it, c)
		}
	}
	// Determinism.
	train2, _, _, err := l.Split(7, 0.8, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if train2.NumEpisodes() != train.NumEpisodes() || train2.Episode(0).Item != train.Episode(0).Item {
		t.Fatal("same-seed split differs")
	}
}

func TestSplitBadFractions(t *testing.T) {
	l, err := FromActions(4, sampleActions())
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range [][2]float64{{-0.1, 0.5}, {0.5, -0.1}, {0.8, 0.3}} {
		if _, _, _, err := l.Split(1, c[0], c[1]); err == nil {
			t.Errorf("fractions %v accepted", c)
		}
	}
}

func TestComputeStats(t *testing.T) {
	l, err := FromActions(10, sampleActions())
	if err != nil {
		t.Fatal(err)
	}
	s := l.ComputeStats()
	if s.NumUsers != 10 || s.NumItems != 2 || s.NumActions != 5 {
		t.Fatalf("stats = %+v", s)
	}
	if s.ActiveUsers != 4 {
		t.Fatalf("ActiveUsers = %d, want 4", s.ActiveUsers)
	}
	if s.MaxEpisode != 3 || s.MeanEpisode != 2.5 {
		t.Fatalf("episode stats = %+v", s)
	}
}

// Property: FromActions never loses or invents adoptions — the per-user
// total over episodes equals the number of distinct (user,item) inputs.
func TestFromActionsConservation(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		numUsers := int32(1 + r.Intn(20))
		numItems := int32(1 + r.Intn(10))
		n := r.Intn(200)
		distinct := map[[2]int32]bool{}
		actions := make([]Action, 0, n)
		for i := 0; i < n; i++ {
			a := Action{User: r.Int31n(numUsers), Item: r.Int31n(numItems), Time: r.Float64()}
			actions = append(actions, a)
			distinct[[2]int32{a.User, a.Item}] = true
		}
		l, err := FromActions(numUsers, actions)
		if err != nil {
			return false
		}
		return l.NumActions() == int64(len(distinct))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
