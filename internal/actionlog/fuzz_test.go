package actionlog

import (
	"bytes"
	"testing"
)

// FuzzReadTSV asserts the action-log reader never panics on corrupt input
// and that every accepted log satisfies its invariants: users inside the
// universe, episodes chronologically ordered, each user at most once per
// episode. Regression seeds live in testdata/fuzz/FuzzReadTSV.
func FuzzReadTSV(f *testing.F) {
	for _, seed := range [][]byte{
		[]byte("0\t0\t1\n1\t0\t2\n"),
		[]byte("# log\n\n2 5 1.25\r\n"),
		[]byte("2147483647\t0\t1\n"),
		[]byte("2147483646\t0\t1\n"),
		[]byte("-3\t0\t1\n"),
		[]byte("0\t-1\t1\n"),
		[]byte("0\t0\tNaN\n0\t0\t1\n"),
		[]byte("0\t0\t+Inf\n"),
		[]byte("0\t0\n"),
		[]byte("x\ty\tz\n"),
		[]byte("1\t1\t1e308\n1\t1\t-1e308\n"),
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		l, err := ReadTSV(bytes.NewReader(data), 0)
		if err != nil {
			return
		}
		n := l.NumUsers()
		if n <= 0 {
			t.Fatalf("accepted log with universe %d", n)
		}
		l.Episodes(func(e *Episode) {
			seen := make(map[int32]bool, len(e.Records))
			for i, r := range e.Records {
				if r.User < 0 || r.User >= n {
					t.Fatalf("user %d outside universe %d", r.User, n)
				}
				if seen[r.User] {
					t.Fatalf("user %d twice in episode %d", r.User, e.Item)
				}
				seen[r.User] = true
				// NaN timestamps may not break ordering of the non-NaN
				// records; comparisons with NaN are vacuously false, so only
				// check adjacent comparable pairs.
				if i > 0 && r.Time < e.Records[i-1].Time {
					t.Fatalf("episode %d out of order at %d", e.Item, i)
				}
			}
		})
	})
}
