// Package actionlog implements the action-log substrate of the Inf2vec
// reproduction: the record of "user u performed action i at time t" tuples
// that, together with the social graph, drives every influence-learning
// method in the paper.
//
// The central type is Log, a set of diffusion episodes. Each episode D_i
// collects the users who adopted item i in chronological order (the paper's
// D_i = {(u, t_u^i)}). Logs are immutable once constructed and safe for
// concurrent reads.
package actionlog

import (
	"errors"
	"fmt"
	"sort"

	"inf2vec/internal/rng"
)

// Action is one raw log tuple: user performed the action identified by Item
// at Time.
type Action struct {
	User int32
	Item int32
	Time float64
}

// Record is one adoption inside an episode.
type Record struct {
	User int32
	Time float64
}

// Episode is one diffusion episode D_i: every adoption of a single item, in
// chronological order. A user appears at most once (their earliest
// adoption).
type Episode struct {
	Item    int32
	Records []Record
}

// Len returns the number of adoptions in the episode.
func (e *Episode) Len() int { return len(e.Records) }

// Users returns the adopting users in chronological order as a fresh slice.
func (e *Episode) Users() []int32 {
	us := make([]int32, len(e.Records))
	for i, r := range e.Records {
		us[i] = r.User
	}
	return us
}

// Log is an immutable collection of diffusion episodes over a fixed user
// universe.
type Log struct {
	numUsers int32
	episodes []Episode
}

// ErrNoUsers is returned when a log is constructed with a non-positive user
// universe.
var ErrNoUsers = errors.New("actionlog: user universe must be positive")

// FromActions builds a Log from raw tuples. Episodes are grouped by item,
// sorted chronologically (ties broken by user ID for determinism), and a
// user's duplicate adoptions of the same item are collapsed to the earliest.
// numUsers fixes the user universe; any action referencing a user outside
// [0, numUsers) is an error.
func FromActions(numUsers int32, actions []Action) (*Log, error) {
	if numUsers <= 0 {
		return nil, ErrNoUsers
	}
	byItem := make(map[int32][]Record)
	for i, a := range actions {
		if a.User < 0 || a.User >= numUsers {
			return nil, fmt.Errorf("actionlog: action %d: user %d outside [0,%d)", i, a.User, numUsers)
		}
		if a.Item < 0 {
			return nil, fmt.Errorf("actionlog: action %d: negative item %d", i, a.Item)
		}
		byItem[a.Item] = append(byItem[a.Item], Record{User: a.User, Time: a.Time})
	}
	items := make([]int32, 0, len(byItem))
	for it := range byItem {
		items = append(items, it)
	}
	sort.Slice(items, func(i, j int) bool { return items[i] < items[j] })

	log := &Log{numUsers: numUsers, episodes: make([]Episode, 0, len(items))}
	for _, it := range items {
		recs := byItem[it]
		sort.Slice(recs, func(i, j int) bool {
			if recs[i].Time != recs[j].Time {
				return recs[i].Time < recs[j].Time
			}
			return recs[i].User < recs[j].User
		})
		// Keep only each user's earliest adoption.
		seen := make(map[int32]bool, len(recs))
		out := recs[:0]
		for _, r := range recs {
			if !seen[r.User] {
				seen[r.User] = true
				out = append(out, r)
			}
		}
		log.episodes = append(log.episodes, Episode{Item: it, Records: out})
	}
	return log, nil
}

// FromEpisodes builds a Log directly from pre-sorted episodes. It validates
// chronological order and user bounds.
func FromEpisodes(numUsers int32, eps []Episode) (*Log, error) {
	if numUsers <= 0 {
		return nil, ErrNoUsers
	}
	for _, e := range eps {
		seen := make(map[int32]bool, len(e.Records))
		for i, r := range e.Records {
			if r.User < 0 || r.User >= numUsers {
				return nil, fmt.Errorf("actionlog: episode %d: user %d outside [0,%d)", e.Item, r.User, numUsers)
			}
			if i > 0 && r.Time < e.Records[i-1].Time {
				return nil, fmt.Errorf("actionlog: episode %d: records out of chronological order at index %d", e.Item, i)
			}
			if seen[r.User] {
				return nil, fmt.Errorf("actionlog: episode %d: user %d appears twice", e.Item, r.User)
			}
			seen[r.User] = true
		}
	}
	return &Log{numUsers: numUsers, episodes: eps}, nil
}

// NumUsers returns the size of the user universe.
func (l *Log) NumUsers() int32 { return l.numUsers }

// NumEpisodes returns the number of episodes (distinct items with at least
// one adoption).
func (l *Log) NumEpisodes() int { return len(l.episodes) }

// NumActions returns the total number of adoptions across all episodes.
func (l *Log) NumActions() int64 {
	var n int64
	for i := range l.episodes {
		n += int64(len(l.episodes[i].Records))
	}
	return n
}

// Episode returns the i-th episode. The returned pointer shares the log's
// storage and must be treated as read-only.
func (l *Log) Episode(i int) *Episode { return &l.episodes[i] }

// Episodes calls fn for each episode in order.
func (l *Log) Episodes(fn func(e *Episode)) {
	for i := range l.episodes {
		fn(&l.episodes[i])
	}
}

// UserActionCounts returns, per user, the number of episodes the user
// appears in. Used for A_u in the ST baseline and for log statistics.
func (l *Log) UserActionCounts() []int64 {
	counts := make([]int64, l.numUsers)
	for i := range l.episodes {
		for _, r := range l.episodes[i].Records {
			counts[r.User]++
		}
	}
	return counts
}

// Split partitions the episodes at random (seeded) into train/tune/test
// logs with the given fractions. Fractions must be non-negative and sum to
// at most 1; the test split receives the remainder. The paper's protocol is
// Split(seed, 0.8, 0.1): 80% train, 10% tune, 10% test.
func (l *Log) Split(seed uint64, trainFrac, tuneFrac float64) (train, tune, test *Log, err error) {
	if trainFrac < 0 || tuneFrac < 0 || trainFrac+tuneFrac > 1 {
		return nil, nil, nil, fmt.Errorf("actionlog: bad split fractions %v/%v", trainFrac, tuneFrac)
	}
	r := rng.New(seed)
	perm := r.Perm(len(l.episodes))
	nTrain := int(float64(len(perm)) * trainFrac)
	nTune := int(float64(len(perm)) * tuneFrac)

	pick := func(idx []int) *Log {
		eps := make([]Episode, len(idx))
		for i, j := range idx {
			eps[i] = l.episodes[j]
		}
		sort.Slice(eps, func(a, b int) bool { return eps[a].Item < eps[b].Item })
		return &Log{numUsers: l.numUsers, episodes: eps}
	}
	train = pick(perm[:nTrain])
	tune = pick(perm[nTrain : nTrain+nTune])
	test = pick(perm[nTrain+nTune:])
	return train, tune, test, nil
}

// Stats summarizes a log for Table I style reporting.
type Stats struct {
	NumUsers    int32
	NumItems    int
	NumActions  int64
	MeanEpisode float64 // mean adoptions per episode
	MaxEpisode  int     // largest episode
	ActiveUsers int32   // users with at least one action
}

// ComputeStats returns summary statistics of the log.
func (l *Log) ComputeStats() Stats {
	s := Stats{NumUsers: l.numUsers, NumItems: len(l.episodes)}
	counts := l.UserActionCounts()
	for _, c := range counts {
		if c > 0 {
			s.ActiveUsers++
		}
	}
	for i := range l.episodes {
		n := len(l.episodes[i].Records)
		s.NumActions += int64(n)
		if n > s.MaxEpisode {
			s.MaxEpisode = n
		}
	}
	if len(l.episodes) > 0 {
		s.MeanEpisode = float64(s.NumActions) / float64(len(l.episodes))
	}
	return s
}
