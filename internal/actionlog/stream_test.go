package actionlog

import (
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestReadTSVPartialTailIsRetryable(t *testing.T) {
	// Two complete lines, then a writer caught mid-append.
	in := "0\t0\t1\n1\t0\t2\n2\t0\t"
	l, err := ReadTSV(strings.NewReader(in), 0)
	var partial *PartialTailError
	if !errors.As(err, &partial) {
		t.Fatalf("err = %v, want *PartialTailError", err)
	}
	if partial.Offset != 12 || partial.Line != "2\t0\t" {
		t.Fatalf("partial = %+v, want offset 12 line %q", partial, "2\t0\t")
	}
	if l == nil || l.NumActions() != 2 {
		t.Fatalf("prefix log = %+v, want the 2 complete actions", l)
	}
}

func TestReadTSVTerminatedMalformedStaysFatal(t *testing.T) {
	// A newline-terminated bad line is corruption, not a partial append.
	l, err := ReadTSV(strings.NewReader("0\t0\t1\n0\t1\nmore\tstuff\t3\n"), 0)
	if err == nil {
		t.Fatal("expected error")
	}
	var partial *PartialTailError
	if errors.As(err, &partial) {
		t.Fatalf("terminated malformed line misreported as partial tail: %v", err)
	}
	if l != nil {
		t.Fatalf("fatal parse error returned a log: %+v", l)
	}
}

func TestReadTSVUnterminatedWellFormedTailParses(t *testing.T) {
	// Whole-file semantics: a final line missing only its newline is data.
	l, err := ReadTSV(strings.NewReader("0\t0\t1\n1\t0\t2"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if l.NumActions() != 2 {
		t.Fatalf("NumActions = %d, want 2", l.NumActions())
	}
}

func TestTailConsumesOnlyCompleteLines(t *testing.T) {
	in := "# header\n0\t0\t1\r\n\n1\t0\t2\n2\t0\t3"
	actions, next, err := Tail(strings.NewReader(in), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(actions) != 2 {
		t.Fatalf("actions = %v, want 2", actions)
	}
	if actions[0] != (Action{User: 0, Item: 0, Time: 1}) || actions[1] != (Action{User: 1, Item: 0, Time: 2}) {
		t.Fatalf("actions = %v", actions)
	}
	// Everything through the last newline is consumed; the unterminated
	// "2\t0\t3" is not — the writer may still be appending digits to it.
	want := int64(len(in) - len("2\t0\t3"))
	if next != want {
		t.Fatalf("next = %d, want %d", next, want)
	}
}

func TestTailTerminatedMalformedIsFatal(t *testing.T) {
	actions, next, err := Tail(strings.NewReader("0\t0\t1\nbogus\n"), 0)
	if err == nil {
		t.Fatal("expected error for terminated malformed line")
	}
	if len(actions) != 1 || next != 6 {
		t.Fatalf("prefix = %v next %d, want 1 action ending at 6", actions, next)
	}
}

func TestTailTSVResumesAcrossAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log.tsv")
	if err := os.WriteFile(path, []byte("0\t0\t1\n1\t0\t"), 0o644); err != nil {
		t.Fatal(err)
	}
	actions, next, err := TailTSV(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(actions) != 1 || next != 6 {
		t.Fatalf("first tail: %v next %d", actions, next)
	}
	// Writer finishes the line and appends another.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("2\n2\t0\t3\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()
	actions, next, err = TailTSV(path, next)
	if err != nil {
		t.Fatal(err)
	}
	if len(actions) != 2 {
		t.Fatalf("second tail: %v", actions)
	}
	if actions[0] != (Action{User: 1, Item: 0, Time: 2}) || actions[1] != (Action{User: 2, Item: 0, Time: 3}) {
		t.Fatalf("second tail parsed %v", actions)
	}
	fi, _ := os.Stat(path)
	if next != fi.Size() {
		t.Fatalf("next = %d, want file size %d", next, fi.Size())
	}
}

func TestTailTSVOffsetBeyondSizeFails(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log.tsv")
	if err := os.WriteFile(path, []byte("0\t0\t1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := TailTSV(path, 100); err == nil {
		t.Fatal("expected error for offset beyond file size")
	}
	if _, _, err := TailTSV(path, -1); err == nil {
		t.Fatal("expected error for negative offset")
	}
}

func TestCursorRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log.tsv.offset")
	want := Cursor{Offset: 12345, ModelCRC: 0xdeadbeef}
	if err := SaveCursor(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCursor(path)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("LoadCursor = %+v, want %+v", got, want)
	}
}

func TestCursorMissingFile(t *testing.T) {
	_, err := LoadCursor(filepath.Join(t.TempDir(), "nope"))
	if !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("err = %v, want fs.ErrNotExist", err)
	}
}

func TestCursorCorruption(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cursor")
	if err := SaveCursor(path, Cursor{Offset: 7, ModelCRC: 9}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"bit flip":   append(append([]byte{}, raw[:10]...), append([]byte{raw[10] ^ 0x40}, raw[11:]...)...),
		"truncated":  raw[:len(raw)-3],
		"bad magic":  append([]byte("NOTCUR"), raw[6:]...),
		"bad vers":   append(append([]byte{}, raw[:6]...), append([]byte{99}, raw[7:]...)...),
		"empty file": {},
	}
	for name, data := range cases {
		p := filepath.Join(dir, strings.ReplaceAll(name, " ", "_"))
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadCursor(p); !errors.Is(err, ErrBadCursor) {
			t.Errorf("%s: err = %v, want ErrBadCursor", name, err)
		}
	}
}
