package actionlog

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// maxLineBytes bounds a single log line; anything longer is corrupt input,
// not an action tuple.
const maxLineBytes = 16 * 1024 * 1024

// PartialTailError reports that the final line of the input was not
// newline-terminated and does not parse as an action tuple: the writer was
// caught mid-append. The read is retryable, not fatal — Offset is the byte
// position at which the truncated line starts, so a caller can re-read from
// there once the writer has finished the line. ReadTSV returns it alongside
// the log parsed from the complete prefix.
type PartialTailError struct {
	// Offset is the byte offset of the first byte of the truncated line.
	Offset int64
	// Line is the truncated text observed after Offset.
	Line string
}

func (e *PartialTailError) Error() string {
	return fmt.Sprintf("actionlog: truncated final line %q at byte %d (writer mid-append; retry from offset)", e.Line, e.Offset)
}

// lineScanner yields lines from a reader while tracking the exact byte
// offset consumed, including newlines — the property the streaming tailer's
// durable resume cursor is built on. bufio.Scanner cannot report offsets, so
// the loop is hand-rolled over ReadSlice.
type lineScanner struct {
	br  *bufio.Reader
	off int64 // bytes consumed from the underlying reader so far
}

func newLineScanner(r io.Reader) *lineScanner {
	return &lineScanner{br: bufio.NewReaderSize(r, 64*1024)}
}

// next returns the next line with its trailing newline (and any preceding
// '\r') stripped. terminated reports whether the line ended in '\n'; a false
// value means the reader hit EOF mid-line. The consumed byte count — newline
// included — is added to s.off. At clean EOF next returns io.EOF.
func (s *lineScanner) next() (line string, terminated bool, err error) {
	var buf []byte
	for {
		chunk, err := s.br.ReadSlice('\n')
		buf = append(buf, chunk...)
		if len(buf) > maxLineBytes {
			return "", false, fmt.Errorf("line longer than %d bytes", maxLineBytes)
		}
		switch {
		case err == nil:
			s.off += int64(len(buf))
			line := strings.TrimSuffix(strings.TrimSuffix(string(buf), "\n"), "\r")
			return line, true, nil
		case errors.Is(err, bufio.ErrBufferFull):
			continue
		case errors.Is(err, io.EOF):
			if len(buf) == 0 {
				return "", false, io.EOF
			}
			s.off += int64(len(buf))
			return string(buf), false, nil
		default:
			return "", false, err
		}
	}
}

// parseLine parses one log line. skip reports a blank or '#'-comment line.
func parseLine(line string, lineNo int) (a Action, skip bool, err error) {
	line = strings.TrimSpace(line)
	if line == "" || strings.HasPrefix(line, "#") {
		return Action{}, true, nil
	}
	fields := strings.Fields(line)
	if len(fields) < 3 {
		return Action{}, false, fmt.Errorf("actionlog: line %d: want 3 fields, got %q", lineNo, line)
	}
	u, err := strconv.ParseInt(fields[0], 10, 32)
	if err != nil {
		return Action{}, false, fmt.Errorf("actionlog: line %d: bad user %q: %w", lineNo, fields[0], err)
	}
	if u == math.MaxInt32 {
		// The inferred universe size u+1 must itself fit in an int32.
		return Action{}, false, fmt.Errorf("actionlog: line %d: user id %d overflows the universe size", lineNo, u)
	}
	it, err := strconv.ParseInt(fields[1], 10, 32)
	if err != nil {
		return Action{}, false, fmt.Errorf("actionlog: line %d: bad item %q: %w", lineNo, fields[1], err)
	}
	ts, err := strconv.ParseFloat(fields[2], 64)
	if err != nil {
		return Action{}, false, fmt.Errorf("actionlog: line %d: bad time %q: %w", lineNo, fields[2], err)
	}
	return Action{User: int32(u), Item: int32(it), Time: ts}, false, nil
}

// ReadTSV parses an action log from r: one "user<TAB>item<TAB>time" tuple
// per line (any whitespace separation accepted), '#'-prefixed lines and
// blank lines ignored. numUsers fixes the user universe; pass 0 to infer it
// as maxUser+1.
//
// A newline-terminated line that fails to parse is a fatal error: the log is
// corrupt. A final line without a newline is treated differently, because a
// concurrent writer may have been caught mid-append: if it parses it is
// accepted, and if it does not, ReadTSV returns the log built from the
// complete prefix together with a *PartialTailError carrying the stable
// offset at which to retry.
func ReadTSV(r io.Reader, numUsers int32) (*Log, error) {
	sc := newLineScanner(r)
	var actions []Action
	var maxUser int32 = -1
	lineNo := 0
	var partial *PartialTailError
	for {
		start := sc.off
		line, terminated, err := sc.next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("actionlog: reading log: %w", err)
		}
		lineNo++
		a, skip, perr := parseLine(line, lineNo)
		if perr != nil {
			if !terminated {
				partial = &PartialTailError{Offset: start, Line: line}
				break
			}
			return nil, perr
		}
		if skip {
			continue
		}
		actions = append(actions, a)
		if a.User > maxUser {
			maxUser = a.User
		}
	}
	if numUsers == 0 {
		numUsers = maxUser + 1
	}
	l, err := FromActions(numUsers, actions)
	if err != nil {
		return nil, err
	}
	if partial != nil {
		return l, partial
	}
	return l, nil
}

// WriteTSV writes the log as "user\titem\ttime" lines grouped by episode in
// chronological order, with a comment header.
func WriteTSV(w io.Writer, l *Log) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# action log: %d users, %d items, %d actions\n",
		l.NumUsers(), l.NumEpisodes(), l.NumActions()); err != nil {
		return fmt.Errorf("actionlog: writing log: %w", err)
	}
	var werr error
	l.Episodes(func(e *Episode) {
		if werr != nil {
			return
		}
		for _, rec := range e.Records {
			if _, err := fmt.Fprintf(bw, "%d\t%d\t%g\n", rec.User, e.Item, rec.Time); err != nil {
				werr = err
				return
			}
		}
	})
	if werr != nil {
		return fmt.Errorf("actionlog: writing log: %w", werr)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("actionlog: writing log: %w", err)
	}
	return nil
}
