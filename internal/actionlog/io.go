package actionlog

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// ReadTSV parses an action log from r: one "user<TAB>item<TAB>time" tuple
// per line (any whitespace separation accepted), '#'-prefixed lines and
// blank lines ignored. numUsers fixes the user universe; pass 0 to infer it
// as maxUser+1.
func ReadTSV(r io.Reader, numUsers int32) (*Log, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var actions []Action
	var maxUser int32 = -1
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 3 {
			return nil, fmt.Errorf("actionlog: line %d: want 3 fields, got %q", lineNo, line)
		}
		u, err := strconv.ParseInt(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("actionlog: line %d: bad user %q: %w", lineNo, fields[0], err)
		}
		if u == math.MaxInt32 {
			// The inferred universe size u+1 must itself fit in an int32.
			return nil, fmt.Errorf("actionlog: line %d: user id %d overflows the universe size", lineNo, u)
		}
		it, err := strconv.ParseInt(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("actionlog: line %d: bad item %q: %w", lineNo, fields[1], err)
		}
		ts, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return nil, fmt.Errorf("actionlog: line %d: bad time %q: %w", lineNo, fields[2], err)
		}
		actions = append(actions, Action{User: int32(u), Item: int32(it), Time: ts})
		if int32(u) > maxUser {
			maxUser = int32(u)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("actionlog: reading log: %w", err)
	}
	if numUsers == 0 {
		numUsers = maxUser + 1
	}
	return FromActions(numUsers, actions)
}

// WriteTSV writes the log as "user\titem\ttime" lines grouped by episode in
// chronological order, with a comment header.
func WriteTSV(w io.Writer, l *Log) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# action log: %d users, %d items, %d actions\n",
		l.NumUsers(), l.NumEpisodes(), l.NumActions()); err != nil {
		return fmt.Errorf("actionlog: writing log: %w", err)
	}
	var werr error
	l.Episodes(func(e *Episode) {
		if werr != nil {
			return
		}
		for _, rec := range e.Records {
			if _, err := fmt.Fprintf(bw, "%d\t%d\t%g\n", rec.User, e.Item, rec.Time); err != nil {
				werr = err
				return
			}
		}
	})
	if werr != nil {
		return fmt.Errorf("actionlog: writing log: %w", werr)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("actionlog: writing log: %w", err)
	}
	return nil
}
