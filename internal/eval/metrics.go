// Package eval implements the paper's evaluation pipeline: the AUC / MAP /
// P@N metrics (§V-B), the four score aggregation functions of Eq. 7, and the
// two prediction tasks — activation prediction (the Goyal et al. replay
// protocol) and diffusion prediction (the Bourigault et al. seed-set
// protocol) — runnable uniformly over IC-based and latent-representation
// methods.
package eval

import (
	"fmt"
	"sort"
)

// ScoredCandidate is one ranked prediction: a candidate with its model
// score and ground-truth label.
type ScoredCandidate struct {
	User  int32
	Score float64
	Label bool
}

// AUC computes the area under the ROC curve by the Mann-Whitney ranking
// statistic, with tied scores receiving average ranks (the "ranking scheme"
// of [32] the paper adopts instead of thresholding). It returns ok=false
// when the candidates are single-class, in which case AUC is undefined.
func AUC(cands []ScoredCandidate) (auc float64, ok bool) {
	pos, neg := 0, 0
	for _, c := range cands {
		if c.Label {
			pos++
		} else {
			neg++
		}
	}
	if pos == 0 || neg == 0 {
		return 0, false
	}
	sorted := append([]ScoredCandidate(nil), cands...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Score < sorted[j].Score })

	var rankSum float64 // sum of average ranks of positives (1-indexed)
	i := 0
	for i < len(sorted) {
		j := i
		for j < len(sorted) && sorted[j].Score == sorted[i].Score {
			j++
		}
		avgRank := float64(i+j+1) / 2 // average of ranks i+1 .. j
		for t := i; t < j; t++ {
			if sorted[t].Label {
				rankSum += avgRank
			}
		}
		i = j
	}
	auc = (rankSum - float64(pos)*float64(pos+1)/2) / (float64(pos) * float64(neg))
	return auc, true
}

// rankDescending returns the candidates in descending score order with ties
// broken by user ID for determinism.
func rankDescending(cands []ScoredCandidate) []ScoredCandidate {
	sorted := append([]ScoredCandidate(nil), cands...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Score != sorted[j].Score {
			return sorted[i].Score > sorted[j].Score
		}
		return sorted[i].User < sorted[j].User
	})
	return sorted
}

// AveragePrecision computes AP over the ranked candidates: the mean, over
// positive positions, of precision at that position. Returns ok=false when
// no positives exist.
func AveragePrecision(cands []ScoredCandidate) (ap float64, ok bool) {
	sorted := rankDescending(cands)
	hits := 0
	var sum float64
	for i, c := range sorted {
		if c.Label {
			hits++
			sum += float64(hits) / float64(i+1)
		}
	}
	if hits == 0 {
		return 0, false
	}
	return sum / float64(hits), true
}

// PrecisionAt computes P@N over the ranked candidates: the fraction of the
// top-min(N, len) predictions that are positive. Returns ok=false for an
// empty candidate set or non-positive N.
func PrecisionAt(cands []ScoredCandidate, n int) (p float64, ok bool) {
	if n <= 0 || len(cands) == 0 {
		return 0, false
	}
	sorted := rankDescending(cands)
	if n > len(sorted) {
		n = len(sorted)
	}
	hits := 0
	for _, c := range sorted[:n] {
		if c.Label {
			hits++
		}
	}
	return float64(hits) / float64(n), true
}

// Metrics is the paper's five-column result row, averaged over test
// episodes.
type Metrics struct {
	AUC  float64
	MAP  float64
	P10  float64
	P50  float64
	P100 float64
	// Episodes counts the test episodes that contributed to the averages.
	Episodes int
}

// String renders the row in the format of Tables II/III.
func (m Metrics) String() string {
	return fmt.Sprintf("AUC=%.4f MAP=%.4f P@10=%.4f P@50=%.4f P@100=%.4f (n=%d)",
		m.AUC, m.MAP, m.P10, m.P50, m.P100, m.Episodes)
}

// metricAccumulator averages per-episode metrics, tracking each metric's
// own denominator because some episodes define AUC but not AP or vice
// versa.
type metricAccumulator struct {
	auc, ap, p10, p50, p100   float64
	nAUC, nAP, n10, n50, n100 int
	episodes                  int
}

func (a *metricAccumulator) add(cands []ScoredCandidate) {
	if len(cands) == 0 {
		return
	}
	a.episodes++
	if v, ok := AUC(cands); ok {
		a.auc += v
		a.nAUC++
	}
	if v, ok := AveragePrecision(cands); ok {
		a.ap += v
		a.nAP++
	}
	if v, ok := PrecisionAt(cands, 10); ok {
		a.p10 += v
		a.n10++
	}
	if v, ok := PrecisionAt(cands, 50); ok {
		a.p50 += v
		a.n50++
	}
	if v, ok := PrecisionAt(cands, 100); ok {
		a.p100 += v
		a.n100++
	}
}

func (a *metricAccumulator) metrics() Metrics {
	div := func(sum float64, n int) float64 {
		if n == 0 {
			return 0
		}
		return sum / float64(n)
	}
	return Metrics{
		AUC:      div(a.auc, a.nAUC),
		MAP:      div(a.ap, a.nAP),
		P10:      div(a.p10, a.n10),
		P50:      div(a.p50, a.n50),
		P100:     div(a.p100, a.n100),
		Episodes: a.episodes,
	}
}
