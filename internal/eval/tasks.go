package eval

import (
	"context"
	"fmt"
	"sort"

	"inf2vec/internal/actionlog"
	"inf2vec/internal/graph"
	"inf2vec/internal/ic"
	"inf2vec/internal/rng"
)

// PairScorer scores the learned likelihood x(u,v) that user u influences
// user v. Latent representation models (Inf2vec, MF, node2vec, and the
// embedding store itself) implement it.
type PairScorer interface {
	Score(u, v int32) float64
}

// ScoreFunc scores one activation-prediction candidate v given the
// time-ordered set of already-active users that can influence it.
type ScoreFunc func(active []int32, v int32) float64

// LatentActivationScorer adapts a PairScorer plus an Eq. 7 aggregator to the
// activation-prediction task.
func LatentActivationScorer(s PairScorer, agg Aggregator) ScoreFunc {
	return func(active []int32, v int32) float64 {
		xs := make([]float64, len(active))
		for i, u := range active {
			xs[i] = s.Score(u, v)
		}
		y, err := agg.Aggregate(xs)
		if err != nil {
			// The replay protocol only scores candidates with at least one
			// active neighbor (activationCandidates filters the rest), so an
			// empty set is a caller bug; zero — no influence evidence — is
			// the safe answer.
			return 0
		}
		return y
	}
}

// ICActivationScorer adapts an edge-probability model to the
// activation-prediction task through Eq. 8.
func ICActivationScorer(p ic.EdgeProber) ScoreFunc {
	return func(active []int32, v int32) float64 {
		return ic.ActivationProb(p, active, v)
	}
}

// ActivationPrediction runs the §V-B1 protocol over every test episode:
// replay the episode, collect candidate users (users with at least one
// episode adopter among their in-neighbors), score each candidate from its
// set of active friends, and rank.
//
// Ground-truth positives are adopters influenced by their neighbors — i.e.
// episode members with at least one friend active strictly before their own
// adoption. Episode members none of whose friends adopted first are excluded
// from the candidate set (they are neither influence successes nor
// failures); non-members are negatives. Every candidate — positive or
// negative — is scored from the full, time-ordered set of its
// episode-adopting friends: scoring positives from only their earlier-active
// friends would make |S_v| systematically smaller for positives than for
// negatives, and Eq. 8 scores grow monotonically with |S_v|, which would
// bias every IC method below chance. Per-episode metrics are averaged over
// episodes.
func ActivationPrediction(g *graph.Graph, test *actionlog.Log, score ScoreFunc) (Metrics, error) {
	if g.NumNodes() < test.NumUsers() {
		return Metrics{}, fmt.Errorf("eval: graph has %d nodes, log universe is %d", g.NumNodes(), test.NumUsers())
	}
	var acc metricAccumulator
	test.Episodes(func(e *actionlog.Episode) {
		acc.add(activationCandidates(g, e, score))
	})
	return acc.metrics(), nil
}

// activationCandidates builds the scored candidate list of one episode.
func activationCandidates(g *graph.Graph, e *actionlog.Episode, score ScoreFunc) []ScoredCandidate {
	when := make(map[int32]float64, e.Len())
	for _, r := range e.Records {
		when[r.User] = r.Time
	}
	// Candidate set: out-neighbors of adopters.
	seen := make(map[int32]bool)
	var cands []ScoredCandidate
	for _, r := range e.Records {
		for _, v := range g.OutNeighbors(r.User) {
			if seen[v] {
				continue
			}
			seen[v] = true
			tv, isMember := when[v]
			// Adopter friends of v in activation order, and whether any
			// adopted before v did (the influence ground truth).
			var active []int32
			influenced := false
			for _, rec := range e.Records {
				if rec.User == v || !g.HasEdge(rec.User, v) {
					continue
				}
				active = append(active, rec.User)
				if isMember && rec.Time < tv {
					influenced = true
				}
			}
			if len(active) == 0 || (isMember && !influenced) {
				// Member adopted before any friend: excluded per protocol.
				continue
			}
			cands = append(cands, ScoredCandidate{
				User:  v,
				Score: score(active, v),
				Label: isMember,
			})
		}
	}
	return cands
}

// DiffusionScoreFunc scores every user in the universe given the
// time-ordered seed set of one episode.
type DiffusionScoreFunc func(seeds []int32) ([]float64, error)

// LatentDiffusionScorer adapts a PairScorer to the diffusion-prediction
// task: each user's score aggregates its pair scores from all seeds (Eq. 7).
func LatentDiffusionScorer(s PairScorer, agg Aggregator, numUsers int32) DiffusionScoreFunc {
	return func(seeds []int32) ([]float64, error) {
		if len(seeds) == 0 {
			return nil, fmt.Errorf("eval: empty seed set")
		}
		scores := make([]float64, numUsers)
		xs := make([]float64, len(seeds))
		for v := int32(0); v < numUsers; v++ {
			for i, u := range seeds {
				xs[i] = s.Score(u, v)
			}
			y, err := agg.Aggregate(xs)
			if err != nil {
				return nil, err
			}
			scores[v] = y
		}
		return scores, nil
	}
}

// MonteCarloDiffusionScorer adapts an edge-probability model to the
// diffusion-prediction task: each user's score is its activation frequency
// over runs IC simulations from the seeds (the paper uses 5,000 runs).
func MonteCarloDiffusionScorer(g *graph.Graph, p ic.EdgeProber, runs int, seed uint64) DiffusionScoreFunc {
	r := rng.New(seed)
	return func(seeds []int32) ([]float64, error) {
		return ic.MonteCarlo(context.Background(), g, p, seeds, runs, r)
	}
}

// DiffusionPrediction runs the §V-B2 protocol: for each test episode the
// first seedFrac (paper: 5%) of adopters — at least one — become the seed
// set, the remaining adopters are ground-truth positives, and every other
// user of the universe is a negative. Episodes with fewer than two adopters
// carry no ground truth and are skipped.
func DiffusionPrediction(g *graph.Graph, test *actionlog.Log, score DiffusionScoreFunc, seedFrac float64) (Metrics, error) {
	if seedFrac <= 0 || seedFrac >= 1 {
		return Metrics{}, fmt.Errorf("eval: seed fraction %v outside (0,1)", seedFrac)
	}
	if g.NumNodes() < test.NumUsers() {
		return Metrics{}, fmt.Errorf("eval: graph has %d nodes, log universe is %d", g.NumNodes(), test.NumUsers())
	}
	var acc metricAccumulator
	var firstErr error
	test.Episodes(func(e *actionlog.Episode) {
		if firstErr != nil || e.Len() < 2 {
			return
		}
		numSeeds := int(float64(e.Len()) * seedFrac)
		if numSeeds < 1 {
			numSeeds = 1
		}
		users := e.Users()
		seeds := users[:numSeeds]
		scores, err := score(seeds)
		if err != nil {
			firstErr = err
			return
		}
		if int32(len(scores)) < test.NumUsers() {
			firstErr = fmt.Errorf("eval: scorer returned %d scores for %d users", len(scores), test.NumUsers())
			return
		}
		isSeed := make(map[int32]bool, numSeeds)
		for _, s := range seeds {
			isSeed[s] = true
		}
		positive := make(map[int32]bool, e.Len()-numSeeds)
		for _, u := range users[numSeeds:] {
			positive[u] = true
		}
		cands := make([]ScoredCandidate, 0, test.NumUsers()-int32(numSeeds))
		for v := int32(0); v < test.NumUsers(); v++ {
			if isSeed[v] {
				continue
			}
			cands = append(cands, ScoredCandidate{User: v, Score: scores[v], Label: positive[v]})
		}
		acc.add(cands)
	})
	if firstErr != nil {
		return Metrics{}, firstErr
	}
	return acc.metrics(), nil
}

// PriorActiveFriendCounts returns, for every adoption in the log, how many
// of the adopter's friends (in-neighbors) had already adopted the same item
// — the variable whose CDF is the paper's Figure 3.
func PriorActiveFriendCounts(g *graph.Graph, l *actionlog.Log) []int {
	var counts []int
	l.Episodes(func(e *actionlog.Episode) {
		when := make(map[int32]float64, e.Len())
		for _, r := range e.Records {
			when[r.User] = r.Time
		}
		for _, r := range e.Records {
			n := 0
			for _, u := range g.InNeighbors(r.User) {
				if tu, ok := when[u]; ok && tu < r.Time {
					n++
				}
			}
			counts = append(counts, n)
		}
	})
	sort.Ints(counts)
	return counts
}
