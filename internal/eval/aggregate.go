package eval

import "fmt"

// Aggregator is the F() of Eq. 7: it merges the pair scores x(u,v) from the
// set of possibly-influencing users S_v into one activation likelihood.
// Scores arrive in activation-time order, which is what makes Latest
// well-defined.
type Aggregator int

// The four aggregation functions evaluated in Table V.
const (
	Ave    Aggregator = iota // arithmetic mean (the paper's default)
	Sum                      // linear combination
	Max                      // most significant influencer
	Latest                   // most recently activated influencer
)

// String names the aggregator as in Table V.
func (a Aggregator) String() string {
	switch a {
	case Ave:
		return "Ave"
	case Sum:
		return "Sum"
	case Max:
		return "Max"
	case Latest:
		return "Latest"
	default:
		return fmt.Sprintf("Aggregator(%d)", int(a))
	}
}

// Aggregate applies the function to time-ordered scores. It panics on an
// empty slice: callers only score candidates that have at least one active
// neighbor.
func (a Aggregator) Aggregate(xs []float64) float64 {
	if len(xs) == 0 {
		panic("eval: Aggregate over empty score set")
	}
	switch a {
	case Ave:
		var s float64
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	case Sum:
		var s float64
		for _, x := range xs {
			s += x
		}
		return s
	case Max:
		m := xs[0]
		for _, x := range xs[1:] {
			if x > m {
				m = x
			}
		}
		return m
	case Latest:
		return xs[len(xs)-1]
	default:
		panic(fmt.Sprintf("eval: unknown aggregator %d", int(a)))
	}
}

// Aggregators lists all four functions in Table V order.
func Aggregators() []Aggregator { return []Aggregator{Ave, Sum, Max, Latest} }
