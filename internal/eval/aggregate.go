package eval

import (
	"errors"
	"fmt"
	"strings"
)

// Aggregator is the F() of Eq. 7: it merges the pair scores x(u,v) from the
// set of possibly-influencing users S_v into one activation likelihood.
// Scores arrive in activation-time order, which is what makes Latest
// well-defined.
type Aggregator int

// The four aggregation functions evaluated in Table V.
const (
	Ave    Aggregator = iota // arithmetic mean (the paper's default)
	Sum                      // linear combination
	Max                      // most significant influencer
	Latest                   // most recently activated influencer
)

// String names the aggregator as in Table V.
func (a Aggregator) String() string {
	switch a {
	case Ave:
		return "Ave"
	case Sum:
		return "Sum"
	case Max:
		return "Max"
	case Latest:
		return "Latest"
	default:
		return fmt.Sprintf("Aggregator(%d)", int(a))
	}
}

// ErrNoScores is returned by Aggregate (and everything built on it) when
// there is no score to aggregate: a candidate with no active neighbor has no
// Eq. 7 activation likelihood.
var ErrNoScores = errors.New("eval: no scores to aggregate")

// Aggregate applies the function to time-ordered scores. An empty slice
// returns ErrNoScores rather than panicking, so untrusted online callers
// (the serving layer) can never crash the process with a neighbor-less
// candidate; the offline task protocols filter such candidates up front.
func (a Aggregator) Aggregate(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrNoScores
	}
	switch a {
	case Ave:
		var s float64
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs)), nil
	case Sum:
		var s float64
		for _, x := range xs {
			s += x
		}
		return s, nil
	case Max:
		m := xs[0]
		for _, x := range xs[1:] {
			if x > m {
				m = x
			}
		}
		return m, nil
	case Latest:
		return xs[len(xs)-1], nil
	default:
		return 0, fmt.Errorf("eval: unknown aggregator %d", int(a))
	}
}

// Aggregators lists all four functions in Table V order.
func Aggregators() []Aggregator { return []Aggregator{Ave, Sum, Max, Latest} }

// ParseAggregator resolves a case-insensitive aggregator name ("ave", "sum",
// "max", "latest") as accepted by the CLI flags and the serving API.
func ParseAggregator(name string) (Aggregator, error) {
	switch strings.ToLower(name) {
	case "ave":
		return Ave, nil
	case "sum":
		return Sum, nil
	case "max":
		return Max, nil
	case "latest":
		return Latest, nil
	default:
		return Ave, fmt.Errorf("eval: unknown aggregator %q", name)
	}
}
