package eval

import (
	"context"
	"errors"
	"fmt"
	"sort"
)

// ErrUserRange is returned by Scorer methods when a user ID falls outside
// the model's universe. The underlying embedding store indexes flat arrays,
// so range checking here is what keeps untrusted online input from panicking
// the process.
var ErrUserRange = errors.New("eval: user ID outside universe")

// Ranked is one entry of a ranked user list. The JSON tags are the serving
// API's wire shape.
type Ranked struct {
	User  int32   `json:"user"`
	Score float64 `json:"score"`
}

// Scorer is the reusable online scoring facade over a PairScorer: the same
// Eq. 7 logic the evaluation tasks use, but bounds-checked, error-returning
// and cancellation-aware, so both the public Model API and the serving layer
// share one implementation instead of re-deriving it.
type Scorer struct {
	ps PairScorer
	n  int32
}

// NewScorer wraps a pair scorer over a universe of numUsers dense IDs.
func NewScorer(ps PairScorer, numUsers int32) (*Scorer, error) {
	if ps == nil {
		return nil, fmt.Errorf("eval: nil pair scorer")
	}
	if numUsers <= 0 {
		return nil, fmt.Errorf("eval: user universe %d must be positive", numUsers)
	}
	return &Scorer{ps: ps, n: numUsers}, nil
}

// NumUsers returns the user universe size.
func (s *Scorer) NumUsers() int32 { return s.n }

// checkUsers validates that every ID lies in [0, n).
func (s *Scorer) checkUsers(users ...int32) error {
	for _, u := range users {
		if u < 0 || u >= s.n {
			return fmt.Errorf("%w: user %d outside [0,%d)", ErrUserRange, u, s.n)
		}
	}
	return nil
}

// Pair returns the learned influence affinity x(u,v).
func (s *Scorer) Pair(u, v int32) (float64, error) {
	if err := s.checkUsers(u, v); err != nil {
		return 0, err
	}
	return s.ps.Score(u, v), nil
}

// Activation aggregates the pair scores from the time-ordered active user
// set onto candidate v (Eq. 7). An empty active set returns ErrNoScores.
func (s *Scorer) Activation(active []int32, v int32, agg Aggregator) (float64, error) {
	if err := s.checkUsers(v); err != nil {
		return 0, err
	}
	if err := s.checkUsers(active...); err != nil {
		return 0, err
	}
	xs := make([]float64, len(active))
	for i, u := range active {
		xs[i] = s.ps.Score(u, v)
	}
	return agg.Aggregate(xs)
}

// TopInfluenced scores every non-seed user of the universe against the
// time-ordered seed set and returns the topK most likely to be influenced,
// by descending score with ties broken by ascending user ID. The scan
// observes ctx cooperatively (every few thousand users), so a serving
// deadline bounds the worst-case latency of a full-universe ranking.
func (s *Scorer) TopInfluenced(ctx context.Context, seeds []int32, agg Aggregator, topK int) ([]Ranked, error) {
	if topK <= 0 {
		return nil, fmt.Errorf("eval: topK %d must be positive", topK)
	}
	if len(seeds) == 0 {
		return nil, ErrNoScores
	}
	if err := s.checkUsers(seeds...); err != nil {
		return nil, err
	}
	isSeed := make(map[int32]bool, len(seeds))
	for _, u := range seeds {
		isSeed[u] = true
	}
	xs := make([]float64, len(seeds))
	all := make([]Ranked, 0, s.n)
	for v := int32(0); v < s.n; v++ {
		if v&0x1FFF == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		if isSeed[v] {
			continue
		}
		for i, u := range seeds {
			xs[i] = s.ps.Score(u, v)
		}
		y, err := agg.Aggregate(xs)
		if err != nil {
			return nil, err
		}
		all = append(all, Ranked{User: v, Score: y})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Score != all[j].Score {
			return all[i].Score > all[j].Score
		}
		return all[i].User < all[j].User
	})
	if topK < len(all) {
		all = all[:topK]
	}
	return all, nil
}
