package eval

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrUserRange is returned by Scorer methods when a user ID falls outside
// the model's universe. The underlying embedding store indexes flat arrays,
// so range checking here is what keeps untrusted online input from panicking
// the process.
var ErrUserRange = errors.New("eval: user ID outside universe")

// Ranked is one entry of a ranked user list. The JSON tags are the serving
// API's wire shape.
type Ranked struct {
	User  int32   `json:"user"`
	Score float64 `json:"score"`
}

// Scorer is the reusable online scoring facade over a PairScorer: the same
// Eq. 7 logic the evaluation tasks use, but bounds-checked, error-returning
// and cancellation-aware, so both the public Model API and the serving layer
// share one implementation instead of re-deriving it.
type Scorer struct {
	ps PairScorer
	n  int32
}

// NewScorer wraps a pair scorer over a universe of numUsers dense IDs.
func NewScorer(ps PairScorer, numUsers int32) (*Scorer, error) {
	if ps == nil {
		return nil, fmt.Errorf("eval: nil pair scorer")
	}
	if numUsers <= 0 {
		return nil, fmt.Errorf("eval: user universe %d must be positive", numUsers)
	}
	return &Scorer{ps: ps, n: numUsers}, nil
}

// NumUsers returns the user universe size.
func (s *Scorer) NumUsers() int32 { return s.n }

// checkUsers validates that every ID lies in [0, n).
func (s *Scorer) checkUsers(users ...int32) error {
	for _, u := range users {
		if u < 0 || u >= s.n {
			return fmt.Errorf("%w: user %d outside [0,%d)", ErrUserRange, u, s.n)
		}
	}
	return nil
}

// Pair returns the learned influence affinity x(u,v).
func (s *Scorer) Pair(u, v int32) (float64, error) {
	if err := s.checkUsers(u, v); err != nil {
		return 0, err
	}
	return s.ps.Score(u, v), nil
}

// Activation aggregates the pair scores from the time-ordered active user
// set onto candidate v (Eq. 7). An empty active set returns ErrNoScores.
func (s *Scorer) Activation(active []int32, v int32, agg Aggregator) (float64, error) {
	if err := s.checkUsers(v); err != nil {
		return 0, err
	}
	if err := s.checkUsers(active...); err != nil {
		return 0, err
	}
	xs := make([]float64, len(active))
	for i, u := range active {
		xs[i] = s.ps.Score(u, v)
	}
	return agg.Aggregate(xs)
}

// rankBefore reports whether a ranks strictly ahead of b: descending score
// with ties broken by ascending user ID. It is a total order even over NaN
// scores (a diverged model scores everything NaN): NaN ranks after every
// real score, NaN ties fall through to the ID tie-break. sort.Slice's
// strict-weak-ordering contract breaks on a comparator that uses raw float
// comparisons against NaN, yielding nondeterministic rankings — this order
// is what keeps a ranking stable no matter what the model emits.
func rankBefore(a, b Ranked) bool {
	aNaN, bNaN := math.IsNaN(a.Score), math.IsNaN(b.Score)
	switch {
	case aNaN != bNaN:
		return bNaN
	case !aNaN && a.Score != b.Score:
		return a.Score > b.Score
	}
	return a.User < b.User
}

// topkHeap is a bounded heap over Ranked ordered by rankBefore, with the
// lowest-ranked kept entry at the root: a full heap admits a candidate only
// by evicting the root. Hand-rolled sifts over a slice keep the serving path
// free of interface boxing and of allocations beyond the k-sized array.
type topkHeap []Ranked

// push admits cand, evicting the current worst entry when the heap is at
// capacity k and cand outranks it.
func (h *topkHeap) push(cand Ranked, k int) {
	s := *h
	if len(s) < k {
		s = append(s, cand)
		// Sift up: a child that ranks after its parent stays put.
		for i := len(s) - 1; i > 0; {
			parent := (i - 1) / 2
			if !rankBefore(s[parent], s[i]) {
				break
			}
			s[i], s[parent] = s[parent], s[i]
			i = parent
		}
		*h = s
		return
	}
	if !rankBefore(cand, s[0]) {
		return
	}
	s[0] = cand
	// Sift down towards the worse-ranked child.
	for i := 0; ; {
		worst := i
		if l := 2*i + 1; l < len(s) && rankBefore(s[worst], s[l]) {
			worst = l
		}
		if r := 2*i + 2; r < len(s) && rankBefore(s[worst], s[r]) {
			worst = r
		}
		if worst == i {
			break
		}
		s[i], s[worst] = s[worst], s[i]
		i = worst
	}
}

// TopInfluenced scores every non-seed user of the universe against the
// time-ordered seed set and returns the topK most likely to be influenced,
// by descending score with ties broken by ascending user ID (NaN scores
// rank last, deterministically). Candidates stream through a bounded heap —
// O(n log k) time, O(k) memory — rather than materializing and sorting the
// whole universe per request. The scan observes ctx cooperatively (every
// few thousand users), so a serving deadline bounds the worst-case latency
// of a full-universe ranking.
func (s *Scorer) TopInfluenced(ctx context.Context, seeds []int32, agg Aggregator, topK int) ([]Ranked, error) {
	if topK <= 0 {
		return nil, fmt.Errorf("eval: topK %d must be positive", topK)
	}
	if len(seeds) == 0 {
		return nil, ErrNoScores
	}
	if err := s.checkUsers(seeds...); err != nil {
		return nil, err
	}
	isSeed := make(map[int32]bool, len(seeds))
	for _, u := range seeds {
		isSeed[u] = true
	}
	xs := make([]float64, len(seeds))
	top := make(topkHeap, 0, min(topK, int(s.n)))
	for v := int32(0); v < s.n; v++ {
		if v&0x1FFF == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		if isSeed[v] {
			continue
		}
		for i, u := range seeds {
			xs[i] = s.ps.Score(u, v)
		}
		y, err := agg.Aggregate(xs)
		if err != nil {
			return nil, err
		}
		top.push(Ranked{User: v, Score: y}, topK)
	}
	sort.Slice(top, func(i, j int) bool { return rankBefore(top[i], top[j]) })
	return top, nil
}
