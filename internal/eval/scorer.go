package eval

import (
	"context"
	"errors"
	"fmt"
	"math"
	"slices"
)

// ErrUserRange is returned by Scorer methods when a user ID falls outside
// the model's universe. The underlying embedding store indexes flat arrays,
// so range checking here is what keeps untrusted online input from panicking
// the process.
var ErrUserRange = errors.New("eval: user ID outside universe")

// Ranked is one entry of a ranked user list. The JSON tags are the serving
// API's wire shape.
type Ranked struct {
	User  int32   `json:"user"`
	Score float64 `json:"score"`
}

// Scorer is the reusable online scoring facade over a PairScorer: the same
// Eq. 7 logic the evaluation tasks use, but bounds-checked, error-returning
// and cancellation-aware, so both the public Model API and the serving layer
// share one implementation instead of re-deriving it.
type Scorer struct {
	ps PairScorer
	n  int32
}

// NewScorer wraps a pair scorer over a universe of numUsers dense IDs.
func NewScorer(ps PairScorer, numUsers int32) (*Scorer, error) {
	if ps == nil {
		return nil, fmt.Errorf("eval: nil pair scorer")
	}
	if numUsers <= 0 {
		return nil, fmt.Errorf("eval: user universe %d must be positive", numUsers)
	}
	return &Scorer{ps: ps, n: numUsers}, nil
}

// NumUsers returns the user universe size.
func (s *Scorer) NumUsers() int32 { return s.n }

// checkUsers validates that every ID lies in [0, n).
func (s *Scorer) checkUsers(users ...int32) error {
	for _, u := range users {
		if u < 0 || u >= s.n {
			return fmt.Errorf("%w: user %d outside [0,%d)", ErrUserRange, u, s.n)
		}
	}
	return nil
}

// CheckUsers validates that every ID lies in the scorer's universe, so
// callers that index the model directly (the ANN query path reads S_u before
// any scoring call) can reject untrusted IDs with the same error the scoring
// methods return.
func (s *Scorer) CheckUsers(users ...int32) error { return s.checkUsers(users...) }

// Pair returns the learned influence affinity x(u,v).
func (s *Scorer) Pair(u, v int32) (float64, error) {
	if err := s.checkUsers(u, v); err != nil {
		return 0, err
	}
	return s.ps.Score(u, v), nil
}

// Activation aggregates the pair scores from the time-ordered active user
// set onto candidate v (Eq. 7). An empty active set returns ErrNoScores.
func (s *Scorer) Activation(active []int32, v int32, agg Aggregator) (float64, error) {
	if err := s.checkUsers(v); err != nil {
		return 0, err
	}
	if err := s.checkUsers(active...); err != nil {
		return 0, err
	}
	xs := make([]float64, len(active))
	for i, u := range active {
		xs[i] = s.ps.Score(u, v)
	}
	return agg.Aggregate(xs)
}

// rankBefore reports whether a ranks strictly ahead of b: descending score
// with ties broken by ascending user ID. It is a total order even over NaN
// scores (a diverged model scores everything NaN): NaN ranks after every
// real score, NaN ties fall through to the ID tie-break. sort.Slice's
// strict-weak-ordering contract breaks on a comparator that uses raw float
// comparisons against NaN, yielding nondeterministic rankings — this order
// is what keeps a ranking stable no matter what the model emits.
func rankBefore(a, b Ranked) bool {
	aNaN, bNaN := math.IsNaN(a.Score), math.IsNaN(b.Score)
	switch {
	case aNaN != bNaN:
		return bNaN
	case !aNaN && a.Score != b.Score:
		return a.Score > b.Score
	}
	return a.User < b.User
}

// topkHeap is a bounded heap over Ranked ordered by rankBefore, with the
// lowest-ranked kept entry at the root: a full heap admits a candidate only
// by evicting the root. Hand-rolled sifts over a slice keep the serving path
// free of interface boxing and of allocations beyond the k-sized array.
type topkHeap []Ranked

// push admits cand, evicting the current worst entry when the heap is at
// capacity k and cand outranks it.
func (h *topkHeap) push(cand Ranked, k int) {
	s := *h
	if len(s) < k {
		s = append(s, cand)
		// Sift up: a child that ranks after its parent stays put.
		for i := len(s) - 1; i > 0; {
			parent := (i - 1) / 2
			if !rankBefore(s[parent], s[i]) {
				break
			}
			s[i], s[parent] = s[parent], s[i]
			i = parent
		}
		*h = s
		return
	}
	if !rankBefore(cand, s[0]) {
		return
	}
	s[0] = cand
	s.siftDown(0, len(s))
}

// siftDown restores the heap invariant (worst-ranked entry at the root) for
// the subtree rooted at i, considering only h[:size].
func (h topkHeap) siftDown(i, size int) {
	for {
		worst := i
		if l := 2*i + 1; l < size && rankBefore(h[worst], h[l]) {
			worst = l
		}
		if r := 2*i + 2; r < size && rankBefore(h[worst], h[r]) {
			worst = r
		}
		if worst == i {
			return
		}
		h[i], h[worst] = h[worst], h[i]
		i = worst
	}
}

// sortRanked orders a filled topkHeap best-first in place by repeated root
// extraction (classic heapsort over the existing invariant). rankBefore is a
// strict total order, so the result is the unique ranking — identical to
// what sort.Slice over rankBefore produced before, without sort.Slice's
// per-call closure and reflection allocations, which matters because the
// serving path promises an allocation-free scan.
func sortRanked(h topkHeap) {
	for end := len(h) - 1; end > 0; end-- {
		h[0], h[end] = h[end], h[0]
		h.siftDown(0, end)
	}
}

// smallSeedMax is the seed-set size up to and including which the scan keeps
// its seed-membership table and per-candidate score scratch on the stack.
// /v1/topk traffic is overwhelmingly single-seed, so this is the hot case.
const smallSeedMax = 8

// seedTables builds the scan's seed-membership table and score scratch into
// the caller's stack arrays when the seed set is small (the dominant
// single-seed case), falling back to heap structures past smallSeedMax. The
// arrays are declared in the caller rather than bundled into a struct: a
// struct whose fields alias its own arrays is self-referential, which forces
// the whole scratch to the heap and defeats the zero-allocation scan.
func seedTables(seeds []int32, sortedArr *[smallSeedMax]int32, xsArr *[smallSeedMax]float64) (sorted []int32, isSeed map[int32]bool, xs []float64) {
	if len(seeds) <= smallSeedMax {
		sorted = sortedArr[:len(seeds)]
		copy(sorted, seeds)
		slices.Sort(sorted)
		return sorted, nil, xsArr[:len(seeds)]
	}
	isSeed = make(map[int32]bool, len(seeds))
	for _, u := range seeds {
		isSeed[u] = true
	}
	return nil, isSeed, make([]float64, len(seeds))
}

// isSeedOf reports whether v is a seed: a linear sweep of the ascending
// small-path slice (at most smallSeedMax entries, faster than a map probe
// and allocation-free), or a map probe on the large path.
func isSeedOf(sorted []int32, isSeed map[int32]bool, v int32) bool {
	if isSeed != nil {
		return isSeed[v]
	}
	for _, u := range sorted {
		if u >= v {
			return u == v
		}
	}
	return false
}

// TopInfluenced scores every non-seed user of the universe against the
// time-ordered seed set and returns the topK most likely to be influenced,
// by descending score with ties broken by ascending user ID (NaN scores
// rank last, deterministically). Candidates stream through a bounded heap —
// O(n log k) time, O(k) memory — rather than materializing and sorting the
// whole universe per request. The scan observes ctx cooperatively (every
// few thousand users), so a serving deadline bounds the worst-case latency
// of a full-universe ranking.
func (s *Scorer) TopInfluenced(ctx context.Context, seeds []int32, agg Aggregator, topK int) ([]Ranked, error) {
	return s.TopInfluencedInto(ctx, seeds, agg, topK, nil)
}

// TopInfluencedInto is TopInfluenced with a caller-supplied result buffer:
// the returned slice is built inside buf's backing array when its capacity
// covers min(topK, universe), so a caller that recycles buffers (the serving
// hot path) runs the whole scan with zero allocations. buf's contents are
// ignored; passing nil is equivalent to TopInfluenced.
func (s *Scorer) TopInfluencedInto(ctx context.Context, seeds []int32, agg Aggregator, topK int, buf []Ranked) ([]Ranked, error) {
	if topK <= 0 {
		return nil, fmt.Errorf("eval: topK %d must be positive", topK)
	}
	if len(seeds) == 0 {
		return nil, ErrNoScores
	}
	if err := s.checkUsers(seeds...); err != nil {
		return nil, err
	}
	var (
		sortedArr [smallSeedMax]int32
		xsArr     [smallSeedMax]float64
	)
	sorted, isSeed, xs := seedTables(seeds, &sortedArr, &xsArr)
	top := topkHeap(buf[:0])
	if want := min(topK, int(s.n)); cap(top) < want {
		top = make(topkHeap, 0, want)
	}
	for v := int32(0); v < s.n; v++ {
		if v&0x1FFF == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		if isSeedOf(sorted, isSeed, v) {
			continue
		}
		for i, u := range seeds {
			xs[i] = s.ps.Score(u, v)
		}
		y, err := agg.Aggregate(xs)
		if err != nil {
			return nil, err
		}
		top.push(Ranked{User: v, Score: y}, topK)
	}
	sortRanked(top)
	return top, nil
}

// TopAmong is TopInfluenced restricted to an explicit candidate list: only
// the given candidates are scored (seeds among them are skipped), through the
// same aggregation, heap and rankBefore total order as the full scan — so a
// candidate generator that covers the true top-k yields bit-identical
// rankings to exact mode. It is the exact-rescore half of the ANN serving
// path: the index prunes the universe to survivors, TopAmong scores the
// survivors exactly. Candidates are expected to be distinct; a duplicate is
// scored each time it appears.
func (s *Scorer) TopAmong(ctx context.Context, seeds []int32, agg Aggregator, topK int, candidates []int32) ([]Ranked, error) {
	if topK <= 0 {
		return nil, fmt.Errorf("eval: topK %d must be positive", topK)
	}
	if len(seeds) == 0 {
		return nil, ErrNoScores
	}
	if err := s.checkUsers(seeds...); err != nil {
		return nil, err
	}
	var (
		sortedArr [smallSeedMax]int32
		xsArr     [smallSeedMax]float64
	)
	sorted, isSeed, xs := seedTables(seeds, &sortedArr, &xsArr)
	top := make(topkHeap, 0, min(topK, len(candidates)))
	for i, v := range candidates {
		if i&0x1FFF == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		if v < 0 || v >= s.n {
			return nil, fmt.Errorf("%w: candidate %d outside [0,%d)", ErrUserRange, v, s.n)
		}
		if isSeedOf(sorted, isSeed, v) {
			continue
		}
		for j, u := range seeds {
			xs[j] = s.ps.Score(u, v)
		}
		y, err := agg.Aggregate(xs)
		if err != nil {
			return nil, err
		}
		top.push(Ranked{User: v, Score: y}, topK)
	}
	sortRanked(top)
	return top, nil
}

// MergeRanked merges independently ranked lists (each entry carrying a final
// score) into the overall topK, under the same rankBefore total order the
// scans use. It is the gather half of scatter-gather serving: per-shard
// TopAmong results merge into one ranking identical to scoring the union in
// a single scan. Entries are assumed to describe distinct users across
// lists, which the ANN index guarantees by sharding on user-ID range.
func MergeRanked(topK int, lists ...[]Ranked) []Ranked {
	if topK <= 0 {
		return nil
	}
	total := 0
	for _, l := range lists {
		total += len(l)
	}
	top := make(topkHeap, 0, min(topK, total))
	for _, l := range lists {
		for _, r := range l {
			top.push(r, topK)
		}
	}
	sortRanked(top)
	return top
}
