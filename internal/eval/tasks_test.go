package eval

import (
	"math"
	"testing"

	"inf2vec/internal/actionlog"
	"inf2vec/internal/graph"
)

// tableScorer is a PairScorer backed by an explicit score table.
type tableScorer map[[2]int32]float64

func (t tableScorer) Score(u, v int32) float64 { return t[[2]int32{u, v}] }

// constEdgeProber returns p for real edges.
type constEdgeProber struct {
	g *graph.Graph
	p float64
}

func (c constEdgeProber) Prob(u, v int32) float64 {
	if c.g.HasEdge(u, v) {
		return c.p
	}
	return 0
}

// activationFixture: graph 0->1, 0->2; one episode where 0 adopts, then 1.
// Candidates: 1 (positive, active={0}) and 2 (negative, active={0}).
func activationFixture(t *testing.T) (*graph.Graph, *actionlog.Log) {
	t.Helper()
	g, err := graph.FromEdges(3, [][2]int32{{0, 1}, {0, 2}})
	if err != nil {
		t.Fatal(err)
	}
	l, err := actionlog.FromActions(3, []actionlog.Action{
		{User: 0, Item: 0, Time: 1},
		{User: 1, Item: 0, Time: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	return g, l
}

func TestActivationPredictionPerfectScorer(t *testing.T) {
	g, l := activationFixture(t)
	scorer := LatentActivationScorer(tableScorer{{0, 1}: 5, {0, 2}: 1}, Ave)
	m, err := ActivationPrediction(g, l, scorer)
	if err != nil {
		t.Fatal(err)
	}
	if m.Episodes != 1 {
		t.Fatalf("Episodes = %d, want 1", m.Episodes)
	}
	if m.AUC != 1 || m.MAP != 1 {
		t.Fatalf("perfect scorer metrics = %+v", m)
	}
}

func TestActivationPredictionInvertedScorer(t *testing.T) {
	g, l := activationFixture(t)
	scorer := LatentActivationScorer(tableScorer{{0, 1}: 1, {0, 2}: 5}, Ave)
	m, err := ActivationPrediction(g, l, scorer)
	if err != nil {
		t.Fatal(err)
	}
	if m.AUC != 0 {
		t.Fatalf("inverted scorer AUC = %v, want 0", m.AUC)
	}
}

func TestActivationPredictionExcludesUninfluencedAdopters(t *testing.T) {
	// 1->0: user 0 adopts first (no prior active friend) so 0 must not be a
	// candidate; user 1's adoption makes 0's out-neighbors candidates, but 0
	// has none. Candidate set: only 1's out-neighbor 2... none here either.
	g, err := graph.FromEdges(3, [][2]int32{{1, 0}})
	if err != nil {
		t.Fatal(err)
	}
	l, err := actionlog.FromActions(3, []actionlog.Action{
		{User: 0, Item: 0, Time: 1},
		{User: 1, Item: 0, Time: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	e := l.Episode(0)
	cands := activationCandidates(g, e, func(active []int32, v int32) float64 { return 0 })
	if len(cands) != 0 {
		t.Fatalf("candidates = %v, want none (0 adopted before its friend)", cands)
	}
}

func TestActivationPredictionScoresFromAllAdopterFriends(t *testing.T) {
	// Friends 0 and 2 of target 1; 0 adopts before 1, 2 adopts after. User 1
	// is a positive (friend 0 preceded it) and — to keep |S_v| symmetric
	// between positives and negatives — is scored from both adopter friends,
	// in activation order.
	g, err := graph.FromEdges(3, [][2]int32{{0, 1}, {2, 1}})
	if err != nil {
		t.Fatal(err)
	}
	l, err := actionlog.FromActions(3, []actionlog.Action{
		{User: 0, Item: 0, Time: 1},
		{User: 1, Item: 0, Time: 2},
		{User: 2, Item: 0, Time: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	var got []int32
	scorer := func(active []int32, v int32) float64 {
		if v == 1 {
			got = append([]int32(nil), active...)
		}
		return 0
	}
	cands := activationCandidates(g, l.Episode(0), scorer)
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("active set for positive = %v, want [0 2]", got)
	}
	foundPositive := false
	for _, c := range cands {
		if c.User == 1 && c.Label {
			foundPositive = true
		}
	}
	if !foundPositive {
		t.Fatal("user 1 not labeled positive")
	}
}

func TestActivationPredictionICScorer(t *testing.T) {
	g, l := activationFixture(t)
	scorer := ICActivationScorer(constEdgeProber{g, 0.5})
	m, err := ActivationPrediction(g, l, scorer)
	if err != nil {
		t.Fatal(err)
	}
	// Both candidates score 0.5: AUC degenerates to 0.5 via tie handling.
	if math.Abs(m.AUC-0.5) > 1e-12 {
		t.Fatalf("tied IC AUC = %v, want 0.5", m.AUC)
	}
}

func TestActivationPredictionUniverseMismatch(t *testing.T) {
	g, err := graph.FromEdges(2, [][2]int32{{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	l, err := actionlog.FromActions(9, []actionlog.Action{{User: 8, Item: 0, Time: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ActivationPrediction(g, l, func([]int32, int32) float64 { return 0 }); err == nil {
		t.Fatal("universe mismatch accepted")
	}
}

func TestDiffusionPredictionLatent(t *testing.T) {
	// Universe of 5; episode adopters in order: 0 (seed), then 1, 2.
	g, err := graph.FromEdges(5, [][2]int32{{0, 1}, {0, 2}})
	if err != nil {
		t.Fatal(err)
	}
	l, err := actionlog.FromActions(5, []actionlog.Action{
		{User: 0, Item: 0, Time: 1},
		{User: 1, Item: 0, Time: 2},
		{User: 2, Item: 0, Time: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	scores := tableScorer{{0, 1}: 9, {0, 2}: 8, {0, 3}: 1, {0, 4}: 0}
	m, err := DiffusionPrediction(g, l, LatentDiffusionScorer(scores, Ave, 5), 0.05)
	if err != nil {
		t.Fatal(err)
	}
	// Seeds = first adopter (5% of 3 -> min 1). Positives 1,2 outrank 3,4.
	if m.AUC != 1 || m.MAP != 1 {
		t.Fatalf("metrics = %+v, want perfect", m)
	}
	if m.Episodes != 1 {
		t.Fatalf("Episodes = %d, want 1", m.Episodes)
	}
}

func TestDiffusionPredictionSkipsTinyEpisodes(t *testing.T) {
	g, err := graph.FromEdges(3, nil)
	if err != nil {
		t.Fatal(err)
	}
	l, err := actionlog.FromActions(3, []actionlog.Action{{User: 0, Item: 0, Time: 1}})
	if err != nil {
		t.Fatal(err)
	}
	m, err := DiffusionPrediction(g, l, LatentDiffusionScorer(tableScorer{}, Ave, 3), 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if m.Episodes != 0 {
		t.Fatalf("Episodes = %d, want 0 (singleton skipped)", m.Episodes)
	}
}

func TestDiffusionPredictionMonteCarlo(t *testing.T) {
	// Chain 0->1->2 with p=1: MC gives 1 and 2 probability 1, others 0.
	g, err := graph.FromEdges(4, [][2]int32{{0, 1}, {1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	l, err := actionlog.FromActions(4, []actionlog.Action{
		{User: 0, Item: 0, Time: 1},
		{User: 1, Item: 0, Time: 2},
		{User: 2, Item: 0, Time: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	score := MonteCarloDiffusionScorer(g, constEdgeProber{g, 1}, 50, 1)
	m, err := DiffusionPrediction(g, l, score, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if m.AUC != 1 {
		t.Fatalf("deterministic cascade AUC = %v, want 1", m.AUC)
	}
}

func TestDiffusionPredictionValidation(t *testing.T) {
	g, l := activationFixture(t)
	score := LatentDiffusionScorer(tableScorer{}, Ave, 3)
	if _, err := DiffusionPrediction(g, l, score, 0); err == nil {
		t.Error("seedFrac 0 accepted")
	}
	if _, err := DiffusionPrediction(g, l, score, 1); err == nil {
		t.Error("seedFrac 1 accepted")
	}
	short := func(seeds []int32) ([]float64, error) { return []float64{1}, nil }
	if _, err := DiffusionPrediction(g, l, short, 0.05); err == nil {
		t.Error("short score vector accepted")
	}
}

func TestPriorActiveFriendCounts(t *testing.T) {
	g, err := graph.FromEdges(3, [][2]int32{{0, 1}, {2, 1}})
	if err != nil {
		t.Fatal(err)
	}
	l, err := actionlog.FromActions(3, []actionlog.Action{
		{User: 0, Item: 0, Time: 1}, // 0 prior friends
		{User: 2, Item: 0, Time: 2}, // 0 prior friends
		{User: 1, Item: 0, Time: 3}, // friends 0 and 2 both active: 2
	})
	if err != nil {
		t.Fatal(err)
	}
	counts := PriorActiveFriendCounts(g, l)
	want := []int{0, 0, 2}
	if len(counts) != len(want) {
		t.Fatalf("counts = %v, want %v", counts, want)
	}
	for i := range want {
		if counts[i] != want[i] {
			t.Fatalf("counts = %v, want %v", counts, want)
		}
	}
}
