// Quantization parity suite: trains real (reduced) digg-like and flickr-like
// models and pins what int8 serving guarantees relative to fp32 at the
// paper's top-k cutoffs. Two regimes, matching the two ways a server can
// arrive at int8:
//
//   - Same v3 artifact, either precision: EXACTLY the same ranked top-k,
//     sets and order, because both precisions read the same codes.
//   - fp32 (v1/v2) artifact quantized at load: every score stays within the
//     analytic quantization bound, and the ranking can differ only where
//     true score gaps are below that bound — no int8 representation can
//     rank finer than its own resolution.
package eval_test

import (
	"context"
	"math"
	"testing"

	"inf2vec/internal/ann"
	"inf2vec/internal/core"
	"inf2vec/internal/datagen"
	"inf2vec/internal/embed"
	"inf2vec/internal/eval"
)

// The quantized store must plug into both scoring seams without adapters:
// the online Scorer (PairScorer) and the ANN index builder (ann.Source).
var (
	_ eval.PairScorer = (*embed.QuantizedStore)(nil)
	_ ann.Source      = (*embed.QuantizedStore)(nil)
)

// trainPreset trains a small Inf2vec model on a 1/8-scale preset. Workers=1
// keeps the run deterministic, so any parity failure reproduces exactly.
func trainPreset(t *testing.T, gen datagen.Config) *embed.Store {
	t.Helper()
	gen.NumUsers /= 8
	gen.NumItems /= 8
	ds, err := datagen.Generate(gen)
	if err != nil {
		t.Fatalf("generating %s: %v", gen.Name, err)
	}
	train, _, _, err := ds.Log.Split(11, 0.8, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Train(ds.Graph, train, core.Config{
		Dim: 16, ContextLength: 12, Alpha: 0.3,
		LearningRate: 0.05, DecayLearningRate: true,
		NegativeSamples: 4, Iterations: 3, NegativePower: 0.75,
		Workers: 1, Seed: 42,
	})
	if err != nil {
		t.Fatalf("training %s: %v", gen.Name, err)
	}
	return res.Model.Store
}

// maxAbsCoord returns the largest |coordinate| across both embedding
// matrices, for the analytic score-error bound.
func maxAbsCoord(s *embed.Store) float64 {
	var m float64
	for u := int32(0); u < s.NumUsers(); u++ {
		for _, v := range s.SourceVec(u) {
			m = math.Max(m, math.Abs(float64(v)))
		}
		for _, v := range s.TargetVec(u) {
			m = math.Max(m, math.Abs(float64(v)))
		}
	}
	return m
}

func TestInt8ParityOnPresets(t *testing.T) {
	if testing.Short() {
		t.Skip("trains real models; skipped in -short")
	}
	presets := []datagen.Config{datagen.DiggLike(7), datagen.FlickrLike(7)}
	for _, gen := range presets {
		gen := gen
		t.Run(gen.Name, func(t *testing.T) {
			store := trainPreset(t, gen)
			q, stats := embed.Quantize(store)
			n := store.NumUsers()

			// Epsilon leg: every sampled pair score moves by at most the
			// analytic bound d·e·(2·maxCoord + e), where e is the largest
			// per-coordinate dequantization error (biases pass through in
			// float32, so they contribute nothing).
			e := stats.MaxAbsErr
			bound := float64(store.Dim())*e*(2*maxAbsCoord(store)+e) + 1e-9
			for u := int32(0); u < n; u += 7 {
				for v := int32(0); v < n; v += 13 {
					fp, qs := store.Score(u, v), q.Score(u, v)
					if d := math.Abs(fp - qs); d > bound {
						t.Fatalf("score(%d,%d): |%v - %v| = %g exceeds bound %g", u, v, fp, qs, d, bound)
					}
				}
			}

			// Exact top-k leg: both precisions serving the same v3 artifact
			// must return identical ranked answers — same users, same order —
			// at the paper's cutoffs. The fp32 side of this pair is the
			// dequantized store (what -model-precision=fp32 materializes from
			// a v3 file); both sides read the same codes, so the only
			// difference is float32-rounding noise around 2^-24, far below
			// any trained model's rank gaps.
			deq := q.Dequantize()
			deqScorer, err := eval.NewScorer(deq, n)
			if err != nil {
				t.Fatal(err)
			}
			qScorer, err := eval.NewScorer(q, n)
			if err != nil {
				t.Fatal(err)
			}
			ctx := context.Background()
			for _, k := range []int{10, 50} {
				for u := int32(0); u < n; u += n / 9 {
					a, err := deqScorer.TopInfluenced(ctx, []int32{u}, eval.Max, k)
					if err != nil {
						t.Fatal(err)
					}
					b, err := qScorer.TopInfluenced(ctx, []int32{u}, eval.Max, k)
					if err != nil {
						t.Fatal(err)
					}
					if len(a) != len(b) {
						t.Fatalf("u=%d k=%d: lengths %d vs %d", u, k, len(a), len(b))
					}
					for i := range a {
						if a[i].User != b[i].User {
							t.Fatalf("u=%d k=%d rank %d: fp32(v3) user %d (%.9g) vs int8 user %d (%.9g)",
								u, k, i, a[i].User, a[i].Score, b[i].User, b[i].Score)
						}
					}
				}
			}

			// Quantize-at-load leg: against the ORIGINAL fp32 store the int8
			// ranking can legitimately swap neighbors whose score gap is
			// below the quantization error — no int8 representation can rank
			// finer than its own resolution — so the sound guarantee is that
			// every disagreement stays within that error, and the answer
			// sets barely move.
			fpScorer, err := eval.NewScorer(store, n)
			if err != nil {
				t.Fatal(err)
			}
			for _, k := range []int{10, 50} {
				for u := int32(0); u < n; u += n / 9 {
					a, err := fpScorer.TopInfluenced(ctx, []int32{u}, eval.Max, k)
					if err != nil {
						t.Fatal(err)
					}
					b, err := qScorer.TopInfluenced(ctx, []int32{u}, eval.Max, k)
					if err != nil {
						t.Fatal(err)
					}
					inA := make(map[int32]float64, len(a))
					for _, r := range a {
						inA[r.User] = r.Score
					}
					hits := 0
					for i, r := range b {
						if fp, ok := inA[r.User]; ok {
							hits++
							if d := math.Abs(fp - r.Score); d > bound {
								t.Fatalf("u=%d k=%d rank %d: int8 score %v drifted %g from fp32 %v (bound %g)",
									u, k, i, r.Score, d, fp, bound)
							}
						}
					}
					if recall := float64(hits) / float64(len(a)); recall < 0.9 {
						t.Fatalf("u=%d k=%d: recall %.2f < 0.9 against the fp32 ranking", u, k, recall)
					}
					for i := range a {
						if a[i].User == b[i].User {
							continue
						}
						// A positional swap is only legitimate between users
						// whose true scores are within quantization range.
						fb, ok := inA[b[i].User]
						if !ok {
							fb, err = fpScorer.Pair(u, b[i].User)
							if err != nil {
								t.Fatal(err)
							}
						}
						if gap := math.Abs(a[i].Score - fb); gap > 2*bound {
							t.Fatalf("u=%d k=%d rank %d: users %d/%d swapped across a %g score gap (bound %g)",
								u, k, i, a[i].User, b[i].User, gap, 2*bound)
						}
					}
				}
			}
		})
	}
}
