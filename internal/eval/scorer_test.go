package eval

import (
	"context"
	"errors"
	"math"
	"sort"
	"testing"
)

// pairFunc adapts a function to PairScorer for tests.
type pairFunc func(u, v int32) float64

func (f pairFunc) Score(u, v int32) float64 { return f(u, v) }

// diffScorer scores x(u,v) = v - u: deterministic, monotone in v.
var diffScorer = pairFunc(func(u, v int32) float64 { return float64(v - u) })

func TestNewScorerValidation(t *testing.T) {
	if _, err := NewScorer(nil, 5); err == nil {
		t.Error("nil pair scorer accepted")
	}
	if _, err := NewScorer(diffScorer, 0); err == nil {
		t.Error("empty universe accepted")
	}
}

func TestScorerPair(t *testing.T) {
	s, err := NewScorer(diffScorer, 10)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Pair(2, 7)
	if err != nil || got != 5 {
		t.Fatalf("Pair(2,7) = %v, %v", got, err)
	}
	for _, bad := range [][2]int32{{-1, 0}, {0, -1}, {10, 0}, {0, 10}} {
		if _, err := s.Pair(bad[0], bad[1]); !errors.Is(err, ErrUserRange) {
			t.Errorf("Pair(%d,%d): err = %v, want ErrUserRange", bad[0], bad[1], err)
		}
	}
}

func TestScorerActivation(t *testing.T) {
	s, err := NewScorer(diffScorer, 10)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Activation([]int32{0, 2}, 4, Ave)
	if err != nil || got != 3 { // mean of 4-0 and 4-2
		t.Fatalf("Activation = %v, %v, want 3", got, err)
	}
	if _, err := s.Activation(nil, 4, Ave); !errors.Is(err, ErrNoScores) {
		t.Errorf("empty active set: err = %v, want ErrNoScores", err)
	}
	if _, err := s.Activation([]int32{0, 99}, 4, Ave); !errors.Is(err, ErrUserRange) {
		t.Errorf("out-of-range active user: err = %v, want ErrUserRange", err)
	}
	if _, err := s.Activation([]int32{0}, 99, Ave); !errors.Is(err, ErrUserRange) {
		t.Errorf("out-of-range candidate: err = %v, want ErrUserRange", err)
	}
}

func TestScorerTopInfluenced(t *testing.T) {
	s, err := NewScorer(diffScorer, 6)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.TopInfluenced(context.Background(), []int32{0}, Max, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Scores are v-0, so the top-3 non-seed users are 5, 4, 3.
	want := []Ranked{{5, 5}, {4, 4}, {3, 3}}
	if len(got) != len(want) {
		t.Fatalf("got %d results, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("result %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestScorerTopInfluencedTies(t *testing.T) {
	// Constant scorer: every candidate ties, so order must be ascending ID.
	s, err := NewScorer(pairFunc(func(u, v int32) float64 { return 1 }), 5)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.TopInfluenced(context.Background(), []int32{2}, Ave, 10)
	if err != nil {
		t.Fatal(err)
	}
	wantUsers := []int32{0, 1, 3, 4} // seed 2 excluded
	if len(got) != len(wantUsers) {
		t.Fatalf("got %d results, want %d", len(got), len(wantUsers))
	}
	for i, u := range wantUsers {
		if got[i].User != u {
			t.Fatalf("tie order: result %d = user %d, want %d", i, got[i].User, u)
		}
	}
}

func TestScorerTopInfluencedErrors(t *testing.T) {
	s, err := NewScorer(diffScorer, 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.TopInfluenced(context.Background(), nil, Max, 3); !errors.Is(err, ErrNoScores) {
		t.Errorf("empty seeds: err = %v, want ErrNoScores", err)
	}
	if _, err := s.TopInfluenced(context.Background(), []int32{11}, Max, 3); !errors.Is(err, ErrUserRange) {
		t.Errorf("out-of-range seed: err = %v, want ErrUserRange", err)
	}
	if _, err := s.TopInfluenced(context.Background(), []int32{0}, Max, 0); err == nil {
		t.Error("topK=0 accepted")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.TopInfluenced(ctx, []int32{0}, Max, 3); !errors.Is(err, context.Canceled) {
		t.Errorf("canceled ctx: err = %v, want context.Canceled", err)
	}
}

// TestScorerTopInfluencedMatchesFullSort cross-checks the bounded-heap
// selection against a brute-force reference — score every candidate via the
// public Activation path, fully sort, truncate — across topK values below,
// at, and above the candidate count. The pseudo-random scorer has heavy ties
// so the (score desc, user asc) tie-break is exercised, not just the heap
// ordering.
func TestScorerTopInfluencedMatchesFullSort(t *testing.T) {
	scorer := pairFunc(func(u, v int32) float64 {
		h := uint32(u)*2654435761 + uint32(v)*40503
		return float64(int32(h%64)) - 32
	})
	const n = 200
	s, err := NewScorer(scorer, n)
	if err != nil {
		t.Fatal(err)
	}
	seeds := []int32{3, 50, 101}
	isSeed := map[int32]bool{3: true, 50: true, 101: true}
	var ref []Ranked
	for v := int32(0); v < n; v++ {
		if isSeed[v] {
			continue
		}
		sc, err := s.Activation(seeds, v, Ave)
		if err != nil {
			t.Fatal(err)
		}
		ref = append(ref, Ranked{User: v, Score: sc})
	}
	sort.Slice(ref, func(i, j int) bool {
		if ref[i].Score != ref[j].Score {
			return ref[i].Score > ref[j].Score
		}
		return ref[i].User < ref[j].User
	})
	for _, topK := range []int{1, 2, 7, 64, n - len(seeds), n + 50} {
		got, err := s.TopInfluenced(context.Background(), seeds, Ave, topK)
		if err != nil {
			t.Fatal(err)
		}
		want := ref
		if topK < len(want) {
			want = want[:topK]
		}
		if len(got) != len(want) {
			t.Fatalf("topK=%d: got %d results, want %d", topK, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("topK=%d: result %d = %+v, want %+v", topK, i, got[i], want[i])
			}
		}
	}
}

// TestScorerTopInfluencedNaN pins NaN handling: candidates whose aggregate
// is NaN rank strictly after every real score, in ascending user order, and
// the result is identical across calls (sort.Slice on a comparator that
// answers false both ways is unspecified — the heap must use a total order).
func TestScorerTopInfluencedNaN(t *testing.T) {
	scorer := pairFunc(func(u, v int32) float64 {
		if v%2 == 0 {
			return math.NaN()
		}
		return float64(v)
	})
	s, err := NewScorer(scorer, 10)
	if err != nil {
		t.Fatal(err)
	}
	check := func(topK int, wantUsers []int32) {
		t.Helper()
		var prev []Ranked
		for call := 0; call < 3; call++ {
			got, err := s.TopInfluenced(context.Background(), []int32{1}, Max, topK)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(wantUsers) {
				t.Fatalf("topK=%d: got %d results, want %d", topK, len(got), len(wantUsers))
			}
			for i, u := range wantUsers {
				if got[i].User != u {
					t.Fatalf("topK=%d call %d: result %d = user %d, want %d", topK, call, i, got[i].User, u)
				}
			}
			if call > 0 {
				for i := range got {
					if got[i].User != prev[i].User {
						t.Fatalf("topK=%d: call %d differs from call %d at %d", topK, call, call-1, i)
					}
				}
			}
			prev = got
		}
	}
	// Non-seed candidates: odd {3,5,7,9} carry real scores (descending),
	// even {0,2,4,6,8} are NaN and rank last in ascending ID order.
	check(20, []int32{9, 7, 5, 3, 0, 2, 4, 6, 8})
	check(6, []int32{9, 7, 5, 3, 0, 2})
	check(3, []int32{9, 7, 5})
}
