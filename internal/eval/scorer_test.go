package eval

import (
	"context"
	"errors"
	"math"
	"sort"
	"testing"

	"inf2vec/internal/embed"
	"inf2vec/internal/rng"
)

// pairFunc adapts a function to PairScorer for tests.
type pairFunc func(u, v int32) float64

func (f pairFunc) Score(u, v int32) float64 { return f(u, v) }

// diffScorer scores x(u,v) = v - u: deterministic, monotone in v.
var diffScorer = pairFunc(func(u, v int32) float64 { return float64(v - u) })

func TestNewScorerValidation(t *testing.T) {
	if _, err := NewScorer(nil, 5); err == nil {
		t.Error("nil pair scorer accepted")
	}
	if _, err := NewScorer(diffScorer, 0); err == nil {
		t.Error("empty universe accepted")
	}
}

func TestScorerPair(t *testing.T) {
	s, err := NewScorer(diffScorer, 10)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Pair(2, 7)
	if err != nil || got != 5 {
		t.Fatalf("Pair(2,7) = %v, %v", got, err)
	}
	for _, bad := range [][2]int32{{-1, 0}, {0, -1}, {10, 0}, {0, 10}} {
		if _, err := s.Pair(bad[0], bad[1]); !errors.Is(err, ErrUserRange) {
			t.Errorf("Pair(%d,%d): err = %v, want ErrUserRange", bad[0], bad[1], err)
		}
	}
}

func TestScorerActivation(t *testing.T) {
	s, err := NewScorer(diffScorer, 10)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Activation([]int32{0, 2}, 4, Ave)
	if err != nil || got != 3 { // mean of 4-0 and 4-2
		t.Fatalf("Activation = %v, %v, want 3", got, err)
	}
	if _, err := s.Activation(nil, 4, Ave); !errors.Is(err, ErrNoScores) {
		t.Errorf("empty active set: err = %v, want ErrNoScores", err)
	}
	if _, err := s.Activation([]int32{0, 99}, 4, Ave); !errors.Is(err, ErrUserRange) {
		t.Errorf("out-of-range active user: err = %v, want ErrUserRange", err)
	}
	if _, err := s.Activation([]int32{0}, 99, Ave); !errors.Is(err, ErrUserRange) {
		t.Errorf("out-of-range candidate: err = %v, want ErrUserRange", err)
	}
}

func TestScorerTopInfluenced(t *testing.T) {
	s, err := NewScorer(diffScorer, 6)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.TopInfluenced(context.Background(), []int32{0}, Max, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Scores are v-0, so the top-3 non-seed users are 5, 4, 3.
	want := []Ranked{{5, 5}, {4, 4}, {3, 3}}
	if len(got) != len(want) {
		t.Fatalf("got %d results, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("result %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestScorerTopInfluencedTies(t *testing.T) {
	// Constant scorer: every candidate ties, so order must be ascending ID.
	s, err := NewScorer(pairFunc(func(u, v int32) float64 { return 1 }), 5)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.TopInfluenced(context.Background(), []int32{2}, Ave, 10)
	if err != nil {
		t.Fatal(err)
	}
	wantUsers := []int32{0, 1, 3, 4} // seed 2 excluded
	if len(got) != len(wantUsers) {
		t.Fatalf("got %d results, want %d", len(got), len(wantUsers))
	}
	for i, u := range wantUsers {
		if got[i].User != u {
			t.Fatalf("tie order: result %d = user %d, want %d", i, got[i].User, u)
		}
	}
}

func TestScorerTopInfluencedErrors(t *testing.T) {
	s, err := NewScorer(diffScorer, 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.TopInfluenced(context.Background(), nil, Max, 3); !errors.Is(err, ErrNoScores) {
		t.Errorf("empty seeds: err = %v, want ErrNoScores", err)
	}
	if _, err := s.TopInfluenced(context.Background(), []int32{11}, Max, 3); !errors.Is(err, ErrUserRange) {
		t.Errorf("out-of-range seed: err = %v, want ErrUserRange", err)
	}
	if _, err := s.TopInfluenced(context.Background(), []int32{0}, Max, 0); err == nil {
		t.Error("topK=0 accepted")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.TopInfluenced(ctx, []int32{0}, Max, 3); !errors.Is(err, context.Canceled) {
		t.Errorf("canceled ctx: err = %v, want context.Canceled", err)
	}
}

// TestScorerTopInfluencedMatchesFullSort cross-checks the bounded-heap
// selection against a brute-force reference — score every candidate via the
// public Activation path, fully sort, truncate — across topK values below,
// at, and above the candidate count. The pseudo-random scorer has heavy ties
// so the (score desc, user asc) tie-break is exercised, not just the heap
// ordering.
func TestScorerTopInfluencedMatchesFullSort(t *testing.T) {
	scorer := pairFunc(func(u, v int32) float64 {
		h := uint32(u)*2654435761 + uint32(v)*40503
		return float64(int32(h%64)) - 32
	})
	const n = 200
	s, err := NewScorer(scorer, n)
	if err != nil {
		t.Fatal(err)
	}
	seeds := []int32{3, 50, 101}
	isSeed := map[int32]bool{3: true, 50: true, 101: true}
	var ref []Ranked
	for v := int32(0); v < n; v++ {
		if isSeed[v] {
			continue
		}
		sc, err := s.Activation(seeds, v, Ave)
		if err != nil {
			t.Fatal(err)
		}
		ref = append(ref, Ranked{User: v, Score: sc})
	}
	sort.Slice(ref, func(i, j int) bool {
		if ref[i].Score != ref[j].Score {
			return ref[i].Score > ref[j].Score
		}
		return ref[i].User < ref[j].User
	})
	for _, topK := range []int{1, 2, 7, 64, n - len(seeds), n + 50} {
		got, err := s.TopInfluenced(context.Background(), seeds, Ave, topK)
		if err != nil {
			t.Fatal(err)
		}
		want := ref
		if topK < len(want) {
			want = want[:topK]
		}
		if len(got) != len(want) {
			t.Fatalf("topK=%d: got %d results, want %d", topK, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("topK=%d: result %d = %+v, want %+v", topK, i, got[i], want[i])
			}
		}
	}
}

// TestScorerTopInfluencedNaN pins NaN handling: candidates whose aggregate
// is NaN rank strictly after every real score, in ascending user order, and
// the result is identical across calls (sort.Slice on a comparator that
// answers false both ways is unspecified — the heap must use a total order).
func TestScorerTopInfluencedNaN(t *testing.T) {
	scorer := pairFunc(func(u, v int32) float64 {
		if v%2 == 0 {
			return math.NaN()
		}
		return float64(v)
	})
	s, err := NewScorer(scorer, 10)
	if err != nil {
		t.Fatal(err)
	}
	check := func(topK int, wantUsers []int32) {
		t.Helper()
		var prev []Ranked
		for call := 0; call < 3; call++ {
			got, err := s.TopInfluenced(context.Background(), []int32{1}, Max, topK)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(wantUsers) {
				t.Fatalf("topK=%d: got %d results, want %d", topK, len(got), len(wantUsers))
			}
			for i, u := range wantUsers {
				if got[i].User != u {
					t.Fatalf("topK=%d call %d: result %d = user %d, want %d", topK, call, i, got[i].User, u)
				}
			}
			if call > 0 {
				for i := range got {
					if got[i].User != prev[i].User {
						t.Fatalf("topK=%d: call %d differs from call %d at %d", topK, call, call-1, i)
					}
				}
			}
			prev = got
		}
	}
	// Non-seed candidates: odd {3,5,7,9} carry real scores (descending),
	// even {0,2,4,6,8} are NaN and rank last in ascending ID order.
	check(20, []int32{9, 7, 5, 3, 0, 2, 4, 6, 8})
	check(6, []int32{9, 7, 5, 3, 0, 2})
	check(3, []int32{9, 7, 5})
}

// refTopInfluenced is the pre-PR-9 TopInfluenced, kept verbatim as the golden
// reference: per-request isSeed map, per-request xs slice, bounded heap, and
// a final sort.Slice over rankBefore.
func refTopInfluenced(s *Scorer, seeds []int32, agg Aggregator, topK int) ([]Ranked, error) {
	isSeed := make(map[int32]bool, len(seeds))
	for _, u := range seeds {
		isSeed[u] = true
	}
	xs := make([]float64, len(seeds))
	top := make(topkHeap, 0, min(topK, int(s.n)))
	for v := int32(0); v < s.n; v++ {
		if isSeed[v] {
			continue
		}
		for i, u := range seeds {
			xs[i] = s.ps.Score(u, v)
		}
		y, err := agg.Aggregate(xs)
		if err != nil {
			return nil, err
		}
		top.push(Ranked{User: v, Score: y}, topK)
	}
	sort.Slice(top, func(i, j int) bool { return rankBefore(top[i], top[j]) })
	return top, nil
}

// TestTopInfluencedGoldenCrossCheck pins the PR 9 scan rewrite (sorted-slice
// seed membership, stack scratch, in-place heapsort) byte-identical to the
// pre-PR-9 implementation across adversarial score surfaces: pseudo-random
// with heavy ties, all-NaN (diverged model), mixed NaN, and constant scores,
// over single-seed, small multi-seed and beyond-smallSeedMax seed sets.
func TestTopInfluencedGoldenCrossCheck(t *testing.T) {
	scorers := map[string]pairFunc{
		"ties": func(u, v int32) float64 {
			h := uint32(u)*2654435761 + uint32(v)*40503
			return float64(int32(h%16)) - 8
		},
		"nan": func(u, v int32) float64 { return math.NaN() },
		"mixed": func(u, v int32) float64 {
			return map[bool]float64{true: math.NaN(), false: float64(v % 7)}[(u+v)%3 == 0]
		},
		"const": func(u, v int32) float64 { return 1 },
	}
	const n = 300
	seedSets := [][]int32{
		{0},
		{7},
		{299},
		{3, 50, 101},
		{0, 1, 2, 3, 4, 5, 6, 7},            // exactly smallSeedMax
		{0, 10, 20, 30, 40, 50, 60, 70, 80}, // just past smallSeedMax
		{5, 5, 17},                          // duplicate seed
		{0, 13, 26, 39, 52, 65, 78, 91, 104, 117, 130, 143, 156}, // large map path
	}
	for name, ps := range scorers {
		s, err := NewScorer(ps, n)
		if err != nil {
			t.Fatal(err)
		}
		for _, seeds := range seedSets {
			for _, topK := range []int{1, 3, 10, 64, n, n + 5} {
				want, err := refTopInfluenced(s, seeds, Ave, topK)
				if err != nil {
					t.Fatal(err)
				}
				got, err := s.TopInfluenced(context.Background(), seeds, Ave, topK)
				if err != nil {
					t.Fatal(err)
				}
				if len(got) != len(want) {
					t.Fatalf("%s seeds=%v topK=%d: %d results, want %d", name, seeds, topK, len(got), len(want))
				}
				for i := range want {
					gb, wb := math.Float64bits(got[i].Score), math.Float64bits(want[i].Score)
					if got[i].User != want[i].User || gb != wb {
						t.Fatalf("%s seeds=%v topK=%d: result %d = %+v, want %+v", name, seeds, topK, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// storeScorer builds a Scorer over a randomly initialized embedding store, so
// the allocation test measures the real serving configuration (store-backed
// dot products), not a test stub.
func storeScorer(t *testing.T, n int32, dim int, seed uint64) (*Scorer, *embed.Store) {
	t.Helper()
	st, err := embed.New(n, dim)
	if err != nil {
		t.Fatal(err)
	}
	st.Init(rng.New(seed))
	s, err := NewScorer(st, n)
	if err != nil {
		t.Fatal(err)
	}
	return s, st
}

// TestTopInfluencedZeroAlloc verifies the PR 9 satellite: the single-seed
// scan with a recycled result buffer performs zero heap allocations — no
// isSeed map, no xs slice, no sort.Slice closure, no result growth.
func TestTopInfluencedZeroAlloc(t *testing.T) {
	s, _ := storeScorer(t, 4096, 8, 11)
	ctx := context.Background()
	buf := make([]Ranked, 0, 10)
	allocs := testing.AllocsPerRun(20, func() {
		out, err := s.TopInfluencedInto(ctx, []int32{17}, Max, 10, buf)
		if err != nil || len(out) != 10 {
			t.Fatalf("scan failed: %d results, err %v", len(out), err)
		}
	})
	if allocs != 0 {
		t.Fatalf("single-seed scan allocated %.1f times per request, want 0", allocs)
	}
	// The multi-seed small path (≤ smallSeedMax) must stay allocation-free
	// too: membership and scratch live in the stack arrays.
	seeds := []int32{3, 99, 2000}
	allocs = testing.AllocsPerRun(20, func() {
		if _, err := s.TopInfluencedInto(ctx, seeds, Ave, 10, buf); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("three-seed scan allocated %.1f times per request, want 0", allocs)
	}
}

// TestTopAmongMatchesRestrictedScan pins the ANN rescore seam: TopAmong over
// a candidate subset equals the full scan's ranking filtered to that subset,
// and TopAmong over all candidates equals TopInfluenced exactly.
func TestTopAmongMatchesRestrictedScan(t *testing.T) {
	s, _ := storeScorer(t, 500, 6, 7)
	ctx := context.Background()
	seeds := []int32{42}
	full, err := s.TopInfluenced(ctx, seeds, Max, 500)
	if err != nil {
		t.Fatal(err)
	}
	// All candidates (including the seed, which must be skipped).
	all := make([]int32, 500)
	for i := range all {
		all[i] = int32(i)
	}
	got, err := s.TopAmong(ctx, seeds, Max, 500, all)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(full) {
		t.Fatalf("TopAmong(all) returned %d results, want %d", len(got), len(full))
	}
	for i := range full {
		if got[i] != full[i] {
			t.Fatalf("TopAmong(all) result %d = %+v, want %+v", i, got[i], full[i])
		}
	}
	// A strict subset: the result must equal the full ranking filtered to the
	// subset, truncated to topK.
	subset := []int32{4, 9, 44, 100, 250, 251, 252, 499}
	inSubset := map[int32]bool{}
	for _, v := range subset {
		inSubset[v] = true
	}
	var want []Ranked
	for _, r := range full {
		if inSubset[r.User] {
			want = append(want, r)
		}
	}
	if len(want) > 5 {
		want = want[:5]
	}
	got, err = s.TopAmong(ctx, seeds, Max, 5, subset)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("TopAmong(subset) returned %d results, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("TopAmong(subset) result %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	// Out-of-range candidates are rejected, not skipped or panicked on.
	if _, err := s.TopAmong(ctx, seeds, Max, 5, []int32{1, 500}); !errors.Is(err, ErrUserRange) {
		t.Fatalf("out-of-range candidate: err = %v, want ErrUserRange", err)
	}
	if _, err := s.TopAmong(ctx, nil, Max, 5, subset); !errors.Is(err, ErrNoScores) {
		t.Fatalf("empty seeds: err = %v, want ErrNoScores", err)
	}
}

// TestMergeRanked pins the scatter-gather merge: per-shard rankings over a
// partition of the candidates merge into exactly the single-scan ranking,
// NaN entries and ties included.
func TestMergeRanked(t *testing.T) {
	scorer := pairFunc(func(u, v int32) float64 {
		if v%5 == 0 {
			return math.NaN()
		}
		h := uint32(u)*2654435761 + uint32(v)*40503
		return float64(int32(h % 8))
	})
	const n = 120
	s, err := NewScorer(scorer, n)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	seeds := []int32{7}
	for _, topK := range []int{1, 10, n} {
		want, err := s.TopInfluenced(ctx, seeds, Max, topK)
		if err != nil {
			t.Fatal(err)
		}
		// Partition [0,n) into three uneven shards and rank each separately.
		var lists [][]Ranked
		for _, span := range [][2]int32{{0, 17}, {17, 80}, {80, n}} {
			var cands []int32
			for v := span[0]; v < span[1]; v++ {
				cands = append(cands, v)
			}
			l, err := s.TopAmong(ctx, seeds, Max, topK, cands)
			if err != nil {
				t.Fatal(err)
			}
			lists = append(lists, l)
		}
		got := MergeRanked(topK, lists...)
		if len(got) != len(want) {
			t.Fatalf("topK=%d: merged %d results, want %d", topK, len(got), len(want))
		}
		for i := range want {
			gb, wb := math.Float64bits(got[i].Score), math.Float64bits(want[i].Score)
			if got[i].User != want[i].User || gb != wb {
				t.Fatalf("topK=%d: merged result %d = %+v, want %+v", topK, i, got[i], want[i])
			}
		}
	}
	if got := MergeRanked(0, []Ranked{{1, 1}}); got != nil {
		t.Fatalf("MergeRanked(0) = %v, want nil", got)
	}
}
