package eval

import (
	"context"
	"errors"
	"testing"
)

// pairFunc adapts a function to PairScorer for tests.
type pairFunc func(u, v int32) float64

func (f pairFunc) Score(u, v int32) float64 { return f(u, v) }

// diffScorer scores x(u,v) = v - u: deterministic, monotone in v.
var diffScorer = pairFunc(func(u, v int32) float64 { return float64(v - u) })

func TestNewScorerValidation(t *testing.T) {
	if _, err := NewScorer(nil, 5); err == nil {
		t.Error("nil pair scorer accepted")
	}
	if _, err := NewScorer(diffScorer, 0); err == nil {
		t.Error("empty universe accepted")
	}
}

func TestScorerPair(t *testing.T) {
	s, err := NewScorer(diffScorer, 10)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Pair(2, 7)
	if err != nil || got != 5 {
		t.Fatalf("Pair(2,7) = %v, %v", got, err)
	}
	for _, bad := range [][2]int32{{-1, 0}, {0, -1}, {10, 0}, {0, 10}} {
		if _, err := s.Pair(bad[0], bad[1]); !errors.Is(err, ErrUserRange) {
			t.Errorf("Pair(%d,%d): err = %v, want ErrUserRange", bad[0], bad[1], err)
		}
	}
}

func TestScorerActivation(t *testing.T) {
	s, err := NewScorer(diffScorer, 10)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Activation([]int32{0, 2}, 4, Ave)
	if err != nil || got != 3 { // mean of 4-0 and 4-2
		t.Fatalf("Activation = %v, %v, want 3", got, err)
	}
	if _, err := s.Activation(nil, 4, Ave); !errors.Is(err, ErrNoScores) {
		t.Errorf("empty active set: err = %v, want ErrNoScores", err)
	}
	if _, err := s.Activation([]int32{0, 99}, 4, Ave); !errors.Is(err, ErrUserRange) {
		t.Errorf("out-of-range active user: err = %v, want ErrUserRange", err)
	}
	if _, err := s.Activation([]int32{0}, 99, Ave); !errors.Is(err, ErrUserRange) {
		t.Errorf("out-of-range candidate: err = %v, want ErrUserRange", err)
	}
}

func TestScorerTopInfluenced(t *testing.T) {
	s, err := NewScorer(diffScorer, 6)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.TopInfluenced(context.Background(), []int32{0}, Max, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Scores are v-0, so the top-3 non-seed users are 5, 4, 3.
	want := []Ranked{{5, 5}, {4, 4}, {3, 3}}
	if len(got) != len(want) {
		t.Fatalf("got %d results, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("result %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestScorerTopInfluencedTies(t *testing.T) {
	// Constant scorer: every candidate ties, so order must be ascending ID.
	s, err := NewScorer(pairFunc(func(u, v int32) float64 { return 1 }), 5)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.TopInfluenced(context.Background(), []int32{2}, Ave, 10)
	if err != nil {
		t.Fatal(err)
	}
	wantUsers := []int32{0, 1, 3, 4} // seed 2 excluded
	if len(got) != len(wantUsers) {
		t.Fatalf("got %d results, want %d", len(got), len(wantUsers))
	}
	for i, u := range wantUsers {
		if got[i].User != u {
			t.Fatalf("tie order: result %d = user %d, want %d", i, got[i].User, u)
		}
	}
}

func TestScorerTopInfluencedErrors(t *testing.T) {
	s, err := NewScorer(diffScorer, 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.TopInfluenced(context.Background(), nil, Max, 3); !errors.Is(err, ErrNoScores) {
		t.Errorf("empty seeds: err = %v, want ErrNoScores", err)
	}
	if _, err := s.TopInfluenced(context.Background(), []int32{11}, Max, 3); !errors.Is(err, ErrUserRange) {
		t.Errorf("out-of-range seed: err = %v, want ErrUserRange", err)
	}
	if _, err := s.TopInfluenced(context.Background(), []int32{0}, Max, 0); err == nil {
		t.Error("topK=0 accepted")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.TopInfluenced(ctx, []int32{0}, Max, 3); !errors.Is(err, context.Canceled) {
		t.Errorf("canceled ctx: err = %v, want context.Canceled", err)
	}
}
