package eval

import (
	"testing"
	"testing/quick"

	"inf2vec/internal/actionlog"
	"inf2vec/internal/graph"
	"inf2vec/internal/rng"
)

// randomWorld builds a random graph and log for property tests.
func randomWorld(r *rng.RNG) (*graph.Graph, *actionlog.Log, error) {
	n := int32(3 + r.Intn(20))
	b := graph.NewBuilder(n)
	for i := 0; i < r.Intn(80); i++ {
		if err := b.AddEdge(r.Int31n(n), r.Int31n(n)); err != nil {
			return nil, nil, err
		}
	}
	g := b.Build()
	var actions []actionlog.Action
	for it := int32(0); it < 4; it++ {
		for u := int32(0); u < n; u++ {
			if r.Bernoulli(0.4) {
				actions = append(actions, actionlog.Action{User: u, Item: it, Time: r.Float64()})
			}
		}
	}
	l, err := actionlog.FromActions(n, actions)
	return g, l, err
}

// Property: activation-prediction metrics are always within their valid
// ranges, whatever the graph, log and (arbitrary, even adversarial) scorer.
func TestActivationMetricsInRange(t *testing.T) {
	f := func(seed uint64, scoreSeed int64) bool {
		r := rng.New(seed)
		g, l, err := randomWorld(r)
		if err != nil {
			return false
		}
		sr := rng.New(uint64(scoreSeed))
		scorer := func(active []int32, v int32) float64 { return sr.Float64()*2 - 1 }
		m, err := ActivationPrediction(g, l, scorer)
		if err != nil {
			return false
		}
		for _, v := range []float64{m.AUC, m.MAP, m.P10, m.P50, m.P100} {
			if v < 0 || v > 1 {
				return false
			}
		}
		return m.Episodes >= 0 && m.Episodes <= l.NumEpisodes()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: a scorer that perfectly encodes the ground truth achieves
// MAP = AUC = 1 on every episode that has both classes — the evaluation
// machinery never caps a perfect model below 1.
func TestPerfectScorerIsPerfect(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		g, l, err := randomWorld(r)
		if err != nil {
			return false
		}
		ok := true
		l.Episodes(func(e *actionlog.Episode) {
			members := map[int32]bool{}
			for _, rec := range e.Records {
				members[rec.User] = true
			}
			scorer := func(active []int32, v int32) float64 {
				if members[v] {
					return 1
				}
				return 0
			}
			cands := activationCandidates(g, e, scorer)
			if auc, defined := AUC(cands); defined && auc != 1 {
				ok = false
			}
			if ap, defined := AveragePrecision(cands); defined && ap != 1 {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: diffusion prediction partitions the universe — candidates are
// exactly the non-seeds, and metrics stay in range under a random scorer.
func TestDiffusionMetricsInRange(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		g, l, err := randomWorld(r)
		if err != nil {
			return false
		}
		sr := rng.New(seed ^ 0xabcdef)
		score := func(seeds []int32) ([]float64, error) {
			out := make([]float64, l.NumUsers())
			for i := range out {
				out[i] = sr.Float64()
			}
			return out, nil
		}
		m, err := DiffusionPrediction(g, l, score, 0.05)
		if err != nil {
			return false
		}
		for _, v := range []float64{m.AUC, m.MAP, m.P10, m.P50, m.P100} {
			if v < 0 || v > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
