package eval

import (
	"errors"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"inf2vec/internal/rng"
)

func sc(scores []float64, labels []bool) []ScoredCandidate {
	out := make([]ScoredCandidate, len(scores))
	for i := range scores {
		out[i] = ScoredCandidate{User: int32(i), Score: scores[i], Label: labels[i]}
	}
	return out
}

func TestAUCPerfect(t *testing.T) {
	cands := sc([]float64{0.9, 0.8, 0.2, 0.1}, []bool{true, true, false, false})
	auc, ok := AUC(cands)
	if !ok || auc != 1 {
		t.Fatalf("AUC = %v ok=%v, want 1", auc, ok)
	}
}

func TestAUCInverted(t *testing.T) {
	cands := sc([]float64{0.1, 0.9}, []bool{true, false})
	auc, ok := AUC(cands)
	if !ok || auc != 0 {
		t.Fatalf("AUC = %v ok=%v, want 0", auc, ok)
	}
}

func TestAUCTiesGetHalfCredit(t *testing.T) {
	cands := sc([]float64{0.5, 0.5}, []bool{true, false})
	auc, ok := AUC(cands)
	if !ok || math.Abs(auc-0.5) > 1e-12 {
		t.Fatalf("tied AUC = %v, want 0.5", auc)
	}
}

func TestAUCKnownValue(t *testing.T) {
	// Positives at scores 3 and 1; negatives at 2 and 0.
	// Pairs won: (3>2),(3>0),(1>0) = 3 of 4 -> AUC 0.75.
	cands := sc([]float64{3, 2, 1, 0}, []bool{true, false, true, false})
	auc, ok := AUC(cands)
	if !ok || math.Abs(auc-0.75) > 1e-12 {
		t.Fatalf("AUC = %v, want 0.75", auc)
	}
}

func TestAUCSingleClass(t *testing.T) {
	if _, ok := AUC(sc([]float64{1, 2}, []bool{true, true})); ok {
		t.Fatal("all-positive AUC reported ok")
	}
	if _, ok := AUC(sc([]float64{1, 2}, []bool{false, false})); ok {
		t.Fatal("all-negative AUC reported ok")
	}
	if _, ok := AUC(nil); ok {
		t.Fatal("empty AUC reported ok")
	}
}

// Property: AUC is invariant under any strictly monotone score transform
// and complements under label flip when scores are distinct.
func TestAUCProperties(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 2 + r.Intn(30)
		cands := make([]ScoredCandidate, n)
		hasPos, hasNeg := false, false
		for i := range cands {
			cands[i] = ScoredCandidate{
				User:  int32(i),
				Score: float64(i) + r.Float64()*0.5, // distinct scores
				Label: r.Bernoulli(0.5),
			}
			if cands[i].Label {
				hasPos = true
			} else {
				hasNeg = true
			}
		}
		if !hasPos || !hasNeg {
			return true
		}
		base, ok := AUC(cands)
		if !ok {
			return false
		}
		// Monotone transform: exp(score/10).
		trans := append([]ScoredCandidate(nil), cands...)
		for i := range trans {
			trans[i].Score = math.Exp(trans[i].Score / 10)
		}
		tAUC, ok := AUC(trans)
		if !ok || math.Abs(tAUC-base) > 1e-9 {
			return false
		}
		// Label flip.
		flip := append([]ScoredCandidate(nil), cands...)
		for i := range flip {
			flip[i].Label = !flip[i].Label
		}
		fAUC, ok := AUC(flip)
		return ok && math.Abs(fAUC-(1-base)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestAveragePrecision(t *testing.T) {
	// Ranked: pos, neg, pos -> AP = (1/1 + 2/3)/2 = 5/6.
	cands := sc([]float64{3, 2, 1}, []bool{true, false, true})
	ap, ok := AveragePrecision(cands)
	if !ok || math.Abs(ap-5.0/6) > 1e-12 {
		t.Fatalf("AP = %v, want 5/6", ap)
	}
}

func TestAveragePrecisionNoPositives(t *testing.T) {
	if _, ok := AveragePrecision(sc([]float64{1}, []bool{false})); ok {
		t.Fatal("no-positive AP reported ok")
	}
}

func TestAveragePrecisionPerfect(t *testing.T) {
	cands := sc([]float64{5, 4, 3, 2}, []bool{true, true, false, false})
	ap, ok := AveragePrecision(cands)
	if !ok || ap != 1 {
		t.Fatalf("perfect AP = %v, want 1", ap)
	}
}

func TestPrecisionAt(t *testing.T) {
	cands := sc([]float64{4, 3, 2, 1}, []bool{true, false, true, false})
	p, ok := PrecisionAt(cands, 2)
	if !ok || p != 0.5 {
		t.Fatalf("P@2 = %v, want 0.5", p)
	}
	// N larger than the candidate set: denominator shrinks to len.
	p, ok = PrecisionAt(cands, 100)
	if !ok || p != 0.5 {
		t.Fatalf("P@100 over 4 candidates = %v, want 0.5", p)
	}
	if _, ok := PrecisionAt(nil, 10); ok {
		t.Fatal("empty P@N reported ok")
	}
	if _, ok := PrecisionAt(cands, 0); ok {
		t.Fatal("P@0 reported ok")
	}
}

func TestRankDescendingTieBreak(t *testing.T) {
	cands := []ScoredCandidate{
		{User: 5, Score: 1}, {User: 2, Score: 1}, {User: 9, Score: 2},
	}
	sorted := rankDescending(cands)
	if sorted[0].User != 9 || sorted[1].User != 2 || sorted[2].User != 5 {
		t.Fatalf("tie break order = %v", sorted)
	}
}

func TestMetricAccumulator(t *testing.T) {
	var acc metricAccumulator
	acc.add(sc([]float64{2, 1}, []bool{true, false})) // AUC 1, AP 1
	acc.add(sc([]float64{1, 2}, []bool{true, false})) // AUC 0, AP 0.5
	acc.add(nil)                                      // ignored
	acc.add(sc([]float64{1}, []bool{false}))          // counts for episodes, no AUC/AP
	m := acc.metrics()
	if m.Episodes != 3 {
		t.Fatalf("Episodes = %d, want 3", m.Episodes)
	}
	if math.Abs(m.AUC-0.5) > 1e-12 {
		t.Fatalf("mean AUC = %v, want 0.5", m.AUC)
	}
	if math.Abs(m.MAP-0.75) > 1e-12 {
		t.Fatalf("MAP = %v, want 0.75", m.MAP)
	}
}

func TestAggregators(t *testing.T) {
	xs := []float64{1, 3, 2}
	cases := []struct {
		agg  Aggregator
		want float64
	}{
		{Ave, 2}, {Sum, 6}, {Max, 3}, {Latest, 2},
	}
	for _, c := range cases {
		got, err := c.agg.Aggregate(xs)
		if err != nil {
			t.Fatalf("%v.Aggregate: %v", c.agg, err)
		}
		if got != c.want {
			t.Errorf("%v.Aggregate = %v, want %v", c.agg, got, c.want)
		}
	}
}

func TestAggregatorNames(t *testing.T) {
	want := []string{"Ave", "Sum", "Max", "Latest"}
	for i, a := range Aggregators() {
		if a.String() != want[i] {
			t.Errorf("Aggregators()[%d] = %v, want %v", i, a, want[i])
		}
	}
	if Aggregator(99).String() != "Aggregator(99)" {
		t.Error("unknown aggregator String")
	}
}

func TestAggregateEmpty(t *testing.T) {
	for _, a := range Aggregators() {
		if _, err := a.Aggregate(nil); !errors.Is(err, ErrNoScores) {
			t.Errorf("%v.Aggregate(nil): err = %v, want ErrNoScores", a, err)
		}
	}
}

func TestAggregateUnknown(t *testing.T) {
	if _, err := Aggregator(99).Aggregate([]float64{1}); err == nil {
		t.Fatal("unknown aggregator accepted")
	}
}

func TestParseAggregator(t *testing.T) {
	for _, a := range Aggregators() {
		got, err := ParseAggregator(strings.ToUpper(a.String()))
		if err != nil || got != a {
			t.Errorf("ParseAggregator(%q) = %v, %v", a.String(), got, err)
		}
	}
	if _, err := ParseAggregator("median"); err == nil {
		t.Error("unknown aggregator name accepted")
	}
}
