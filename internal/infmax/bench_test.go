package infmax

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"inf2vec/internal/graph"
)

// benchGraph builds a deterministic sparse digraph: every node points at a
// fixed set of offsets, giving a 5-regular expander-ish topology with no
// RNG involved.
func benchGraph(tb testing.TB, n int32) *graph.Graph {
	tb.Helper()
	b := graph.NewBuilder(n)
	for u := int32(0); u < n; u++ {
		for _, off := range []int32{1, 7, 31, 101, 501} {
			if err := b.AddEdge(u, (u+off)%n); err != nil {
				tb.Fatal(err)
			}
		}
	}
	return b.Build()
}

// TestRecordInfmaxBench measures the seed-selection hot path — Monte-Carlo
// spread evaluations per second, and end-to-end selection latency quantiles
// at a fixed evaluation budget (the shape a /v1/seeds deployment cares
// about) — and, when INF2VEC_WRITE_BENCH is set, records them in
// BENCH_infmax.json at the repository root.
func TestRecordInfmaxBench(t *testing.T) {
	if testing.Short() {
		t.Skip("bench recording skipped in -short mode")
	}
	const (
		nodes   = 3000
		k       = 10
		mcRuns  = 50
		poolLen = 100
		budget  = 150
		runs    = 20
	)
	g := benchGraph(t, nodes)
	probs := constProber{g, 0.05}
	pool := make([]int32, poolLen)
	for i := range pool {
		pool[i] = int32(i)
	}

	// Throughput: one uninterrupted selection, evaluations over wall clock.
	full := Config{Seeds: k, MonteCarloRuns: mcRuns, Seed: 1, Candidates: pool}
	start := time.Now()
	res, err := Greedy(context.Background(), g, probs, full)
	if err != nil {
		t.Fatal(err)
	}
	fullElapsed := time.Since(start)
	if res.Partial || len(res.Seeds) != k {
		t.Fatalf("uninterrupted bench run degraded: %+v", res)
	}

	// Latency distribution: repeated budget-bounded selections, each with
	// its own RNG stream, as a fleet of deadline-conscious clients would
	// issue them.
	lat := make([]time.Duration, 0, runs)
	for i := 0; i < runs; i++ {
		cfg := full
		cfg.Seed = uint64(100 + i)
		cfg.MaxEvaluations = budget
		begin := time.Now()
		r, err := Greedy(context.Background(), g, probs, cfg)
		if err != nil {
			t.Fatal(err)
		}
		lat = append(lat, time.Since(begin))
		if r.Evaluations > budget {
			t.Fatalf("run %d spent %d evaluations over budget %d", i, r.Evaluations, budget)
		}
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	quantile := func(q float64) float64 {
		idx := int(q * float64(len(lat)-1))
		return lat[idx].Seconds()
	}

	report := map[string]any{
		"benchmark":              "infmax_celf",
		"graph_nodes":            nodes,
		"graph_edges":            g.NumEdges(),
		"candidates":             poolLen,
		"seeds_k":                k,
		"mc_runs":                mcRuns,
		"full_evaluations":       res.Evaluations,
		"evaluations_per_second": float64(res.Evaluations) / fullElapsed.Seconds(),
		"full_run_seconds":       fullElapsed.Seconds(),
		"budget":                 budget,
		"budgeted_runs":          runs,
		"seeds_p50_s":            quantile(0.50),
		"seeds_p99_s":            quantile(0.99),
		"go_test_generated_by":   "internal/infmax.TestRecordInfmaxBench (INF2VEC_WRITE_BENCH=1)",
	}
	if os.Getenv("INF2VEC_WRITE_BENCH") == "" {
		t.Logf("bench (not recorded; set INF2VEC_WRITE_BENCH=1): %+v", report)
		return
	}
	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	// INF2VEC_BENCH_DIR redirects the report (the CI regression gate writes
	// fresh numbers to a scratch dir and compares them against the committed
	// baselines); default is the repository root.
	benchDir := os.Getenv("INF2VEC_BENCH_DIR")
	if benchDir == "" {
		benchDir = filepath.Join("..", "..")
	}
	path := filepath.Join(benchDir, "BENCH_infmax.json")
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", path)
}
