package infmax

import (
	"math"
	"testing"

	"inf2vec/internal/graph"
)

// starProber gives probability 1 on every edge.
type starProber struct{ g *graph.Graph }

func (p starProber) Prob(u, v int32) float64 {
	if p.g.HasEdge(u, v) {
		return 1
	}
	return 0
}

// twoStars builds hubs 0 (5 leaves) and 6 (3 leaves), plus isolated node 10.
func twoStars(t *testing.T) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(11)
	for leaf := int32(1); leaf <= 5; leaf++ {
		if err := b.AddEdge(0, leaf); err != nil {
			t.Fatal(err)
		}
	}
	for leaf := int32(7); leaf <= 9; leaf++ {
		if err := b.AddEdge(6, leaf); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

func TestGreedyPicksHubsInOrder(t *testing.T) {
	g := twoStars(t)
	res, err := Greedy(g, starProber{g}, Config{Seeds: 2, MonteCarloRuns: 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Seeds) != 2 {
		t.Fatalf("seeds = %v", res.Seeds)
	}
	if res.Seeds[0] != 0 || res.Seeds[1] != 6 {
		t.Fatalf("seeds = %v, want [0 6] (largest hubs first)", res.Seeds)
	}
	// Deterministic spreads: {0} covers 6 nodes, adding 6 covers 10.
	if math.Abs(res.Spread[0]-6) > 1e-9 || math.Abs(res.Spread[1]-10) > 1e-9 {
		t.Fatalf("spread trajectory = %v, want [6 10]", res.Spread)
	}
}

func TestGreedySpreadMonotone(t *testing.T) {
	g := twoStars(t)
	res, err := Greedy(g, starProber{g}, Config{Seeds: 4, MonteCarloRuns: 20, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Spread); i++ {
		if res.Spread[i] < res.Spread[i-1]-1e-9 {
			t.Fatalf("spread not monotone: %v", res.Spread)
		}
	}
}

func TestGreedyCandidateRestriction(t *testing.T) {
	g := twoStars(t)
	res, err := Greedy(g, starProber{g}, Config{
		Seeds: 1, MonteCarloRuns: 20, Seed: 3, Candidates: []int32{6, 7},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Seeds[0] != 6 {
		t.Fatalf("restricted greedy picked %d, want 6", res.Seeds[0])
	}
}

func TestGreedyCELFPrunes(t *testing.T) {
	g := twoStars(t)
	res, err := Greedy(g, starProber{g}, Config{Seeds: 3, MonteCarloRuns: 10, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Naive greedy would need ~11 + 10 + 9 = 30 evaluations; CELF must do
	// meaningfully fewer than the naive count after the initial pass.
	if res.Evaluations >= 30 {
		t.Fatalf("evaluations = %d, CELF should prune below naive 30", res.Evaluations)
	}
}

func TestGreedyValidation(t *testing.T) {
	g := twoStars(t)
	if _, err := Greedy(g, starProber{g}, Config{Seeds: 0}); err == nil {
		t.Error("zero budget accepted")
	}
	if _, err := Greedy(g, starProber{g}, Config{Seeds: 5, Candidates: []int32{1}}); err == nil {
		t.Error("budget above candidate count accepted")
	}
	if _, err := Greedy(g, starProber{g}, Config{Seeds: 1, MonteCarloRuns: -1}); err == nil {
		t.Error("negative MC runs accepted")
	}
}

func TestModelProber(t *testing.T) {
	g := twoStars(t)
	p := &ModelProber{
		G:     g,
		Score: func(u, v int32) float64 { return 100 },
	}
	if got := p.Prob(0, 1); got < 0.99 {
		t.Errorf("high-score edge prob = %v, want ~1", got)
	}
	if got := p.Prob(1, 0); got != 0 {
		t.Errorf("non-edge prob = %v, want 0", got)
	}
	p.Score = func(u, v int32) float64 { return -100 }
	if got := p.Prob(0, 1); got > 0.01 {
		t.Errorf("low-score edge prob = %v, want ~0", got)
	}
	// Offset shifts the operating point.
	p.Score = func(u, v int32) float64 { return 0 }
	p.Offset = 0
	if got := p.Prob(0, 1); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("zero-score prob = %v, want 0.5", got)
	}
}
