package infmax

import (
	"context"
	"math"
	"testing"
	"time"

	"inf2vec/internal/graph"
)

// starProber gives probability 1 on every edge.
type starProber struct{ g *graph.Graph }

func (p starProber) Prob(u, v int32) float64 {
	if p.g.HasEdge(u, v) {
		return 1
	}
	return 0
}

// constProber gives a fixed probability on every edge, making spread
// estimates genuinely Monte-Carlo (RNG-dependent).
type constProber struct {
	g *graph.Graph
	p float64
}

func (p constProber) Prob(u, v int32) float64 {
	if p.g.HasEdge(u, v) {
		return p.p
	}
	return 0
}

// slowProber stalls on every edge lookup — a pathologically slow oracle.
type slowProber struct {
	g     *graph.Graph
	delay time.Duration
}

func (p slowProber) Prob(u, v int32) float64 {
	time.Sleep(p.delay)
	if p.g.HasEdge(u, v) {
		return 1
	}
	return 0
}

// twoStars builds hubs 0 (5 leaves) and 6 (3 leaves), plus isolated node 10.
func twoStars(t *testing.T) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(11)
	for leaf := int32(1); leaf <= 5; leaf++ {
		if err := b.AddEdge(0, leaf); err != nil {
			t.Fatal(err)
		}
	}
	for leaf := int32(7); leaf <= 9; leaf++ {
		if err := b.AddEdge(6, leaf); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

func TestGreedyPicksHubsInOrder(t *testing.T) {
	g := twoStars(t)
	res, err := Greedy(context.Background(), g, starProber{g}, Config{Seeds: 2, MonteCarloRuns: 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Seeds) != 2 {
		t.Fatalf("seeds = %v", res.Seeds)
	}
	if res.Seeds[0] != 0 || res.Seeds[1] != 6 {
		t.Fatalf("seeds = %v, want [0 6] (largest hubs first)", res.Seeds)
	}
	// Deterministic spreads: {0} covers 6 nodes, adding 6 covers 10.
	if math.Abs(res.Spread[0]-6) > 1e-9 || math.Abs(res.Spread[1]-10) > 1e-9 {
		t.Fatalf("spread trajectory = %v, want [6 10]", res.Spread)
	}
	if res.Partial || res.Stopped != "" {
		t.Fatalf("uninterrupted run flagged partial: %+v", res)
	}
}

func TestGreedySpreadMonotone(t *testing.T) {
	g := twoStars(t)
	res, err := Greedy(context.Background(), g, starProber{g}, Config{Seeds: 4, MonteCarloRuns: 20, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Spread); i++ {
		if res.Spread[i] < res.Spread[i-1]-1e-9 {
			t.Fatalf("spread not monotone: %v", res.Spread)
		}
	}
}

func TestGreedyCandidateRestriction(t *testing.T) {
	g := twoStars(t)
	res, err := Greedy(context.Background(), g, starProber{g}, Config{
		Seeds: 1, MonteCarloRuns: 20, Seed: 3, Candidates: []int32{6, 7},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Seeds[0] != 6 {
		t.Fatalf("restricted greedy picked %d, want 6", res.Seeds[0])
	}
}

func TestGreedyCELFPrunes(t *testing.T) {
	g := twoStars(t)
	res, err := Greedy(context.Background(), g, starProber{g}, Config{Seeds: 3, MonteCarloRuns: 10, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Naive greedy would need ~11 + 10 + 9 = 30 evaluations; CELF must do
	// meaningfully fewer than the naive count after the initial pass.
	if res.Evaluations >= 30 {
		t.Fatalf("evaluations = %d, CELF should prune below naive 30", res.Evaluations)
	}
}

func TestGreedyValidation(t *testing.T) {
	g := twoStars(t)
	cases := []struct {
		name string
		cfg  Config
	}{
		{"zero budget", Config{Seeds: 0}},
		{"budget above candidates", Config{Seeds: 5, Candidates: []int32{1}}},
		{"negative MC runs", Config{Seeds: 1, MonteCarloRuns: -1}},
		{"negative eval budget", Config{Seeds: 1, MaxEvaluations: -1}},
		{"negative per-eval timeout", Config{Seeds: 1, PerEvalTimeout: -time.Second}},
		{"candidate above range", Config{Seeds: 1, Candidates: []int32{11}}},
		{"negative candidate", Config{Seeds: 1, Candidates: []int32{-1}}},
		{"duplicate candidates", Config{Seeds: 1, Candidates: []int32{3, 4, 3}}},
	}
	for _, c := range cases {
		if _, err := Greedy(context.Background(), g, starProber{g}, c.cfg); err == nil {
			t.Errorf("%s accepted", c.name)
		}
	}
}

// run is a test helper for an uninterrupted reference selection.
func run(t *testing.T, g *graph.Graph, cfg Config) *Result {
	t.Helper()
	res, err := Greedy(context.Background(), g, constProber{g, 0.3}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestGreedyInvariants pins the satellite contract: non-decreasing spread
// trajectory, the evaluation-count upper bound, and bitwise-deterministic
// results for a fixed seed.
func TestGreedyInvariants(t *testing.T) {
	g := twoStars(t)
	cfg := Config{Seeds: 4, MonteCarloRuns: 30, Seed: 9}
	res := run(t, g, cfg)

	if len(res.Seeds) != cfg.Seeds || len(res.Spread) != cfg.Seeds {
		t.Fatalf("selected %d seeds / %d spreads, want %d", len(res.Seeds), len(res.Spread), cfg.Seeds)
	}
	for i := 1; i < len(res.Spread); i++ {
		if res.Spread[i] < res.Spread[i-1] {
			t.Errorf("spread trajectory decreases at %d: %v", i, res.Spread)
		}
	}
	if bound := cfg.Seeds * int(g.NumNodes()); res.Evaluations > bound {
		t.Errorf("evaluations = %d above k·|candidates| = %d", res.Evaluations, bound)
	}

	again := run(t, g, cfg)
	if again.Evaluations != res.Evaluations {
		t.Fatalf("evaluations differ across identical runs: %d vs %d", again.Evaluations, res.Evaluations)
	}
	for i := range res.Seeds {
		if again.Seeds[i] != res.Seeds[i] {
			t.Fatalf("seeds differ across identical runs: %v vs %v", again.Seeds, res.Seeds)
		}
		if math.Float64bits(again.Spread[i]) != math.Float64bits(res.Spread[i]) {
			t.Fatalf("spread not bitwise deterministic at %d: %x vs %x",
				i, math.Float64bits(again.Spread[i]), math.Float64bits(res.Spread[i]))
		}
	}
}

// requirePrefix asserts that partial is an exact (bitwise) prefix of full.
func requirePrefix(t *testing.T, partial, full *Result) {
	t.Helper()
	if len(partial.Seeds) > len(full.Seeds) {
		t.Fatalf("partial selected %d seeds, full run only %d", len(partial.Seeds), len(full.Seeds))
	}
	for i := range partial.Seeds {
		if partial.Seeds[i] != full.Seeds[i] {
			t.Fatalf("partial seeds %v not a prefix of full %v", partial.Seeds, full.Seeds)
		}
		if math.Float64bits(partial.Spread[i]) != math.Float64bits(full.Spread[i]) {
			t.Fatalf("partial spread %v not a bitwise prefix of full %v", partial.Spread, full.Spread)
		}
	}
}

// TestFaultBudgetExhaustionYieldsExactPrefix sweeps the evaluation budget
// from 1 to the uninterrupted run's count: every budgeted run must return a
// valid flagged prefix of the uninterrupted selection, within budget.
func TestFaultBudgetExhaustionYieldsExactPrefix(t *testing.T) {
	g := twoStars(t)
	cfg := Config{Seeds: 3, MonteCarloRuns: 25, Seed: 11}
	full := run(t, g, cfg)

	for budget := 1; budget <= full.Evaluations; budget++ {
		bcfg := cfg
		bcfg.MaxEvaluations = budget
		res := run(t, g, bcfg)
		if res.Evaluations > budget {
			t.Fatalf("budget %d: spent %d evaluations", budget, res.Evaluations)
		}
		if budget < full.Evaluations {
			if !res.Partial || res.Stopped != StopBudget {
				t.Fatalf("budget %d: partial=%v stopped=%q, want budget stop", budget, res.Partial, res.Stopped)
			}
		} else if res.Partial {
			t.Fatalf("budget %d covers the full run but was flagged partial", budget)
		}
		requirePrefix(t, res, full)
	}
}

// TestFaultCancelAtEvaluationN drives the cancel-at-evaluation hook: a
// context canceled at every possible evaluation index must yield a flagged
// valid prefix, never an error or a hang.
func TestFaultCancelAtEvaluationN(t *testing.T) {
	g := twoStars(t)
	cfg := Config{Seeds: 3, MonteCarloRuns: 25, Seed: 13}
	full := run(t, g, cfg)

	for n := 0; n < full.Evaluations; n++ {
		ctx, cancel := context.WithCancel(context.Background())
		ccfg := cfg
		ccfg.Hooks.BeforeEval = func(eval int, seeds []int32) error {
			if eval == n {
				cancel()
			}
			return nil
		}
		res, err := Greedy(ctx, g, constProber{g, 0.3}, ccfg)
		cancel()
		if err != nil {
			t.Fatalf("cancel at eval %d: %v", n, err)
		}
		if !res.Partial || res.Stopped != StopCanceled {
			t.Fatalf("cancel at eval %d: partial=%v stopped=%q", n, res.Partial, res.Stopped)
		}
		requirePrefix(t, res, full)
	}
}

// TestOnSelectHookObservesEverySelection asserts OnSelect fires once per
// chosen seed, in selection order, with the cumulative spread and evaluation
// count at that moment — and that it is pure observation: the result is
// identical to a run without the hook.
func TestOnSelectHookObservesEverySelection(t *testing.T) {
	g := twoStars(t)
	cfg := Config{Seeds: 3, MonteCarloRuns: 25, Seed: 29}
	plain := run(t, g, cfg)

	type selection struct {
		seed  int32
		total float64
		evals int
	}
	var selections []selection
	hcfg := cfg
	hcfg.Hooks.OnSelect = func(seed int32, spread float64, evaluations int) {
		selections = append(selections, selection{seed, spread, evaluations})
	}
	res := run(t, g, hcfg)

	if len(selections) != len(res.Seeds) {
		t.Fatalf("OnSelect fired %d times for %d seeds", len(selections), len(res.Seeds))
	}
	for i, sel := range selections {
		if sel.seed != res.Seeds[i] {
			t.Fatalf("selection %d: hook saw seed %d, result has %d", i, sel.seed, res.Seeds[i])
		}
		if sel.total != res.Spread[i] {
			t.Fatalf("selection %d: hook saw spread %v, result has %v", i, sel.total, res.Spread[i])
		}
		if sel.evals <= 0 || sel.evals > res.Evaluations {
			t.Fatalf("selection %d: implausible evaluation count %d (total %d)", i, sel.evals, res.Evaluations)
		}
	}
	for i := 1; i < len(selections); i++ {
		if selections[i].evals < selections[i-1].evals {
			t.Fatalf("evaluation counts not monotone: %v", selections)
		}
	}
	if len(res.Seeds) != len(plain.Seeds) {
		t.Fatalf("hook changed the selection: %v vs %v", res.Seeds, plain.Seeds)
	}
	for i := range res.Seeds {
		if res.Seeds[i] != plain.Seeds[i] || res.Spread[i] != plain.Spread[i] {
			t.Fatalf("hook changed the selection: %v/%v vs %v/%v", res.Seeds, res.Spread, plain.Seeds, plain.Spread)
		}
	}
}

// TestFaultOracleFailureAtEvaluationN injects an oracle failure at every
// evaluation index; each run must degrade to a flagged valid prefix.
func TestFaultOracleFailureAtEvaluationN(t *testing.T) {
	g := twoStars(t)
	cfg := Config{Seeds: 3, MonteCarloRuns: 25, Seed: 17}
	full := run(t, g, cfg)

	for n := 0; n < full.Evaluations; n++ {
		fcfg := cfg
		fcfg.Hooks.BeforeEval = func(eval int, seeds []int32) error {
			if eval == n {
				return context.Canceled // any error: the oracle broke
			}
			return nil
		}
		res, err := Greedy(context.Background(), g, constProber{g, 0.3}, fcfg)
		if err != nil {
			t.Fatalf("oracle failure at eval %d: %v", n, err)
		}
		if !res.Partial || res.Stopped != StopOracle {
			t.Fatalf("oracle failure at eval %d: partial=%v stopped=%q", n, res.Partial, res.Stopped)
		}
		if res.Evaluations != n {
			t.Fatalf("oracle failure at eval %d: %d evaluations completed", n, res.Evaluations)
		}
		requirePrefix(t, res, full)
	}
}

// TestFaultDeadlineMidCELF expires the context deadline mid-selection (via a
// hook that outsleeps it) and requires a flagged valid prefix.
func TestFaultDeadlineMidCELF(t *testing.T) {
	g := twoStars(t)
	cfg := Config{Seeds: 3, MonteCarloRuns: 25, Seed: 19}
	full := run(t, g, cfg)

	stallAt := full.Evaluations / 2
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	dcfg := cfg
	dcfg.Hooks.BeforeEval = func(eval int, seeds []int32) error {
		if eval == stallAt {
			<-ctx.Done() // the oracle stalls until the deadline passes
		}
		return nil
	}
	res, err := Greedy(ctx, g, constProber{g, 0.3}, dcfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Partial || res.Stopped != StopDeadline {
		t.Fatalf("partial=%v stopped=%q, want deadline stop", res.Partial, res.Stopped)
	}
	requirePrefix(t, res, full)
}

// TestFaultSlowOraclePerEvalTimeout bounds a single evaluation: a prober
// that stalls on every edge must trip PerEvalTimeout while the parent
// context is still live, and be reported as an eval timeout, not a deadline.
func TestFaultSlowOraclePerEvalTimeout(t *testing.T) {
	g := twoStars(t)
	res, err := Greedy(context.Background(), g, slowProber{g, 2 * time.Millisecond}, Config{
		Seeds: 2, MonteCarloRuns: 50, Seed: 23, PerEvalTimeout: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Partial || res.Stopped != StopEvalTimeout {
		t.Fatalf("partial=%v stopped=%q, want eval_timeout", res.Partial, res.Stopped)
	}
	if len(res.Seeds) != 0 {
		t.Fatalf("first evaluation timed out but %v was selected", res.Seeds)
	}
}

func TestModelProber(t *testing.T) {
	g := twoStars(t)
	p := &ModelProber{
		G:     g,
		Score: func(u, v int32) float64 { return 100 },
	}
	if got := p.Prob(0, 1); got < 0.99 {
		t.Errorf("high-score edge prob = %v, want ~1", got)
	}
	if got := p.Prob(1, 0); got != 0 {
		t.Errorf("non-edge prob = %v, want 0", got)
	}
	p.Score = func(u, v int32) float64 { return -100 }
	if got := p.Prob(0, 1); got > 0.01 {
		t.Errorf("low-score edge prob = %v, want ~0", got)
	}
	// Offset shifts the operating point.
	p.Score = func(u, v int32) float64 { return 0 }
	p.Offset = 0
	if got := p.Prob(0, 1); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("zero-score prob = %v, want 0.5", got)
	}
}
