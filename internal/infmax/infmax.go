// Package infmax implements influence maximization — the viral-marketing
// application the paper's introduction motivates: choose k seed users
// maximizing expected cascade size under the IC model (Kempe, Kleinberg &
// Tardos, KDD 2003).
//
// Greedy selection with the CELF lazy-evaluation optimization (Leskovec et
// al., KDD 2007) exploits submodularity of the spread function: a
// candidate's marginal gain can only shrink as the seed set grows, so stale
// upper bounds prune most spread evaluations.
//
// Greedy is an *anytime* algorithm built for serving: it runs under a
// context deadline and an evaluation budget, and when either expires it
// returns the seeds selected so far flagged Partial instead of an error or
// a hang. Because selection order is a deterministic function of the
// evaluation stream, an interrupted run's seed list is always an exact
// prefix of the uninterrupted run's selection — graceful degradation, never
// a torn answer.
//
// The spread oracle is pluggable: evaluate against learned edge
// probabilities (ST/EM), against an Inf2vec model's scores mapped through a
// sigmoid, or against planted ground truth in experiments.
package infmax

import (
	"container/heap"
	"context"
	"fmt"
	"time"

	"inf2vec/internal/graph"
	"inf2vec/internal/ic"
	"inf2vec/internal/rng"
	"inf2vec/internal/vecmath"
)

// Stop reasons recorded in Result.Stopped when a run ends early. An empty
// Stopped means the run completed its full seed budget.
const (
	// StopDeadline: the context's deadline expired mid-selection.
	StopDeadline = "deadline"
	// StopCanceled: the context was canceled (client gone, server draining).
	StopCanceled = "canceled"
	// StopBudget: Config.MaxEvaluations spread estimations were spent.
	StopBudget = "budget"
	// StopEvalTimeout: one spread evaluation exceeded Config.PerEvalTimeout
	// while the request context was still live — a slow-oracle guard.
	StopEvalTimeout = "eval_timeout"
	// StopOracle: the fault-injection hook (or a failing oracle adapter)
	// reported an evaluation error.
	StopOracle = "oracle_error"
)

// Config controls the greedy optimization.
type Config struct {
	// Seeds is k, the budget. Must be positive.
	Seeds int
	// MonteCarloRuns per spread evaluation. Zero selects 200.
	MonteCarloRuns int
	// Seed drives the simulations.
	Seed uint64
	// Candidates restricts the search to a subset of users (nil = all).
	// Restricting to, say, the top few hundred users by degree or learned
	// influence ability makes CELF tractable on large graphs. IDs must lie
	// in the graph's node range and be free of duplicates.
	Candidates []int32
	// MaxEvaluations bounds the number of Monte-Carlo spread estimations
	// (the compute budget). Zero means unlimited; exhaustion stops the run
	// with the seeds selected so far (Result.Partial, StopBudget).
	MaxEvaluations int
	// PerEvalTimeout bounds a single spread evaluation, guarding against a
	// pathologically slow oracle. Zero means no per-evaluation bound; expiry
	// stops the run (Result.Partial, StopEvalTimeout).
	PerEvalTimeout time.Duration
	// Hooks inject faults for testing; zero value is inert.
	Hooks Hooks
}

// Hooks is the observation and fault-injection seam. BeforeEval runs before
// every spread evaluation with the evaluation index (0-based) and the seed
// set about to be evaluated; returning an error stops the run with the seeds
// selected so far (Result.Partial, StopOracle). Tests use it to fail
// evaluation N, to stall (slow oracle) or to cancel the context at
// evaluation N; the serving layer uses it to checkpoint evaluation progress
// into trace spans. OnSelect fires each time a seed is committed to the
// result, with its estimated cumulative spread and the evaluations spent so
// far — span-event material, never a control-flow hook.
type Hooks struct {
	BeforeEval func(eval int, seeds []int32) error
	OnSelect   func(seed int32, spread float64, evaluations int)
}

// Result is the selected seed set with its estimated spread trajectory.
type Result struct {
	// Seeds in selection order. When Partial, an exact prefix of the seeds
	// the uninterrupted run would have selected.
	Seeds []int32
	// Spread[i] is the estimated expected cascade size of Seeds[:i+1].
	Spread []float64
	// Evaluations counts Monte-Carlo spread estimations performed; CELF's
	// pruning makes this far smaller than Seeds × |Candidates|.
	Evaluations int
	// Partial reports that the run stopped before selecting all cfg.Seeds
	// seeds; Stopped says why. Seeds/Spread hold the best-so-far prefix
	// (possibly empty when interruption hit during the initial candidate
	// pass, before any selection was safe to make).
	Partial bool
	// Stopped is one of the Stop* constants when Partial, else "".
	Stopped string
}

// celfEntry is a lazily re-evaluated candidate.
type celfEntry struct {
	user  int32
	gain  float64 // upper bound on marginal gain
	round int     // seed-set size at which gain was computed
}

type celfHeap []celfEntry

func (h celfHeap) Len() int           { return len(h) }
func (h celfHeap) Less(i, j int) bool { return h[i].gain > h[j].gain }
func (h celfHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *celfHeap) Push(x any)        { *h = append(*h, x.(celfEntry)) }
func (h *celfHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// errStop carries the early-stop classification out of the spread closure.
type errStop struct{ reason string }

func (e errStop) Error() string { return "infmax: stopped: " + e.reason }

// validateCandidates rejects out-of-range IDs and duplicates up front with a
// clear error, instead of letting them panic deep inside the IC simulation
// (negative IDs) or silently skew spread estimates (duplicates would let one
// user be "selected" twice, wasting seed budget on a zero marginal gain).
func validateCandidates(cands []int32, n int32) error {
	seen := make(map[int32]bool, len(cands))
	for i, u := range cands {
		if u < 0 || u >= n {
			return fmt.Errorf("infmax: candidate %d (index %d) outside node range [0,%d)", u, i, n)
		}
		if seen[u] {
			return fmt.Errorf("infmax: duplicate candidate %d (index %d)", u, i)
		}
		seen[u] = true
	}
	return nil
}

// Greedy selects cfg.Seeds users by CELF-accelerated greedy maximization of
// expected IC spread under the given edge probabilities.
//
// It is anytime: deadline expiry, cancellation, budget exhaustion, a
// per-evaluation timeout or an injected oracle failure all end the run
// gracefully with (Result{Partial: true, Stopped: why}, nil) carrying the
// seeds selected so far. A non-nil error is returned only for invalid
// configuration.
func Greedy(ctx context.Context, g *graph.Graph, probs ic.EdgeProber, cfg Config) (*Result, error) {
	if cfg.Seeds <= 0 {
		return nil, fmt.Errorf("infmax: seed budget %d must be positive", cfg.Seeds)
	}
	if cfg.MonteCarloRuns == 0 {
		cfg.MonteCarloRuns = 200
	}
	if cfg.MonteCarloRuns < 0 {
		return nil, fmt.Errorf("infmax: MonteCarloRuns %d must be positive", cfg.MonteCarloRuns)
	}
	if cfg.MaxEvaluations < 0 {
		return nil, fmt.Errorf("infmax: MaxEvaluations %d must not be negative", cfg.MaxEvaluations)
	}
	if cfg.PerEvalTimeout < 0 {
		return nil, fmt.Errorf("infmax: PerEvalTimeout %v must not be negative", cfg.PerEvalTimeout)
	}
	candidates := cfg.Candidates
	if candidates == nil {
		candidates = make([]int32, g.NumNodes())
		for u := int32(0); u < g.NumNodes(); u++ {
			candidates[u] = u
		}
	} else if err := validateCandidates(candidates, g.NumNodes()); err != nil {
		return nil, err
	}
	if len(candidates) < cfg.Seeds {
		return nil, fmt.Errorf("infmax: %d candidates for %d seeds", len(candidates), cfg.Seeds)
	}
	r := rng.New(cfg.Seed)
	res := &Result{}

	// spread runs one budgeted, deadline-bounded evaluation. An errStop
	// return classifies why the run must end; selections already made stay
	// valid because every completed evaluation is identical to the
	// uninterrupted run's (same order, same RNG stream).
	spread := func(seeds []int32) (float64, error) {
		if cfg.MaxEvaluations > 0 && res.Evaluations >= cfg.MaxEvaluations {
			return 0, errStop{StopBudget}
		}
		if h := cfg.Hooks.BeforeEval; h != nil {
			if err := h(res.Evaluations, seeds); err != nil {
				return 0, errStop{StopOracle}
			}
		}
		evalCtx, cancel := ctx, context.CancelFunc(nil)
		if cfg.PerEvalTimeout > 0 {
			evalCtx, cancel = context.WithTimeout(ctx, cfg.PerEvalTimeout)
		}
		res.Evaluations++
		s, err := ic.ExpectedSpread(evalCtx, g, probs, seeds, cfg.MonteCarloRuns, r)
		if cancel != nil {
			cancel()
		}
		if err == nil {
			return s, nil
		}
		switch {
		case ctx.Err() == context.DeadlineExceeded:
			return 0, errStop{StopDeadline}
		case ctx.Err() != nil:
			return 0, errStop{StopCanceled}
		default:
			// The parent context is live, so the per-evaluation context
			// expired on its own: the oracle was too slow for one estimate.
			return 0, errStop{StopEvalTimeout}
		}
	}
	// stop finalizes an anytime return: the seeds selected so far, flagged.
	stop := func(err error) (*Result, error) {
		res.Partial = true
		res.Stopped = err.(errStop).reason
		return res, nil
	}

	// Initial pass: every candidate's solo spread seeds the CELF queue. An
	// interruption here yields an empty (but still valid) prefix — selecting
	// from a partially evaluated pool could pick a seed the full run would
	// not, breaking the prefix guarantee.
	h := make(celfHeap, 0, len(candidates))
	solo := make([]int32, 1)
	for _, u := range candidates {
		solo[0] = u
		s, err := spread(solo)
		if err != nil {
			return stop(err)
		}
		h = append(h, celfEntry{user: u, gain: s, round: 0})
	}
	heap.Init(&h)

	// scratch holds the tentative seed set for stale re-evaluations; one
	// buffer reused across every lazy re-check instead of a fresh slice per
	// stale pop (the CELF hot loop's only allocation).
	scratch := make([]int32, 0, cfg.Seeds)
	var current float64
	for len(res.Seeds) < cfg.Seeds && h.Len() > 0 {
		top := heap.Pop(&h).(celfEntry)
		if top.round == len(res.Seeds) {
			// Fresh bound: by submodularity it is exact, select it.
			res.Seeds = append(res.Seeds, top.user)
			current += top.gain
			res.Spread = append(res.Spread, current)
			if cfg.Hooks.OnSelect != nil {
				cfg.Hooks.OnSelect(top.user, current, res.Evaluations)
			}
			continue
		}
		// Stale: re-evaluate the marginal gain against the current set.
		scratch = append(append(scratch[:0], res.Seeds...), top.user)
		total, err := spread(scratch)
		if err != nil {
			return stop(err)
		}
		gain := total - current
		if gain < 0 {
			gain = 0 // Monte-Carlo noise; spread is monotone
		}
		heap.Push(&h, celfEntry{user: top.user, gain: gain, round: len(res.Seeds)})
	}
	return res, nil
}

// ModelProber adapts a latent pair scorer into an EdgeProber by mapping the
// score of each real edge through a logistic link: P_uv = σ(x(u,v) + Offset).
// It lets a trained Inf2vec model drive IC-based seed selection.
type ModelProber struct {
	G *graph.Graph
	// Score returns the learned pair affinity x(u,v).
	Score func(u, v int32) float64
	// Offset shifts the logistic link; more negative means more
	// conservative probabilities.
	Offset float64
}

// Prob returns σ(Score(u,v)+Offset) for edges of G and 0 otherwise.
func (m *ModelProber) Prob(u, v int32) float64 {
	if !m.G.HasEdge(u, v) {
		return 0
	}
	return vecmath.Sigmoid(m.Score(u, v) + m.Offset)
}
