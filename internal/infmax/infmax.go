// Package infmax implements influence maximization — the viral-marketing
// application the paper's introduction motivates: choose k seed users
// maximizing expected cascade size under the IC model (Kempe, Kleinberg &
// Tardos, KDD 2003).
//
// Greedy selection with the CELF lazy-evaluation optimization (Leskovec et
// al., KDD 2007) exploits submodularity of the spread function: a
// candidate's marginal gain can only shrink as the seed set grows, so stale
// upper bounds prune most spread evaluations.
//
// The spread oracle is pluggable: evaluate against learned edge
// probabilities (ST/EM), against an Inf2vec model's scores mapped through a
// sigmoid, or against planted ground truth in experiments.
package infmax

import (
	"container/heap"
	"fmt"

	"inf2vec/internal/graph"
	"inf2vec/internal/ic"
	"inf2vec/internal/rng"
	"inf2vec/internal/vecmath"
)

// Config controls the greedy optimization.
type Config struct {
	// Seeds is k, the budget. Must be positive.
	Seeds int
	// MonteCarloRuns per spread evaluation. Zero selects 200.
	MonteCarloRuns int
	// Seed drives the simulations.
	Seed uint64
	// Candidates restricts the search to a subset of users (nil = all).
	// Restricting to, say, the top few hundred users by degree or learned
	// influence ability makes CELF tractable on large graphs.
	Candidates []int32
}

// Result is the selected seed set with its estimated spread trajectory.
type Result struct {
	// Seeds in selection order.
	Seeds []int32
	// Spread[i] is the estimated expected cascade size of Seeds[:i+1].
	Spread []float64
	// Evaluations counts Monte-Carlo spread estimations performed; CELF's
	// pruning makes this far smaller than Seeds × |Candidates|.
	Evaluations int
}

// celfEntry is a lazily re-evaluated candidate.
type celfEntry struct {
	user  int32
	gain  float64 // upper bound on marginal gain
	round int     // seed-set size at which gain was computed
}

type celfHeap []celfEntry

func (h celfHeap) Len() int            { return len(h) }
func (h celfHeap) Less(i, j int) bool  { return h[i].gain > h[j].gain }
func (h celfHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *celfHeap) Push(x interface{}) { *h = append(*h, x.(celfEntry)) }
func (h *celfHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Greedy selects cfg.Seeds users by CELF-accelerated greedy maximization of
// expected IC spread under the given edge probabilities.
func Greedy(g *graph.Graph, probs ic.EdgeProber, cfg Config) (*Result, error) {
	if cfg.Seeds <= 0 {
		return nil, fmt.Errorf("infmax: seed budget %d must be positive", cfg.Seeds)
	}
	if cfg.MonteCarloRuns == 0 {
		cfg.MonteCarloRuns = 200
	}
	if cfg.MonteCarloRuns < 0 {
		return nil, fmt.Errorf("infmax: MonteCarloRuns %d must be positive", cfg.MonteCarloRuns)
	}
	candidates := cfg.Candidates
	if candidates == nil {
		candidates = make([]int32, g.NumNodes())
		for u := int32(0); u < g.NumNodes(); u++ {
			candidates[u] = u
		}
	}
	if len(candidates) < cfg.Seeds {
		return nil, fmt.Errorf("infmax: %d candidates for %d seeds", len(candidates), cfg.Seeds)
	}
	r := rng.New(cfg.Seed)
	res := &Result{}

	spread := func(seeds []int32) (float64, error) {
		res.Evaluations++
		return ic.ExpectedSpread(g, probs, seeds, cfg.MonteCarloRuns, r)
	}

	// Initial pass: every candidate's solo spread seeds the CELF queue.
	h := make(celfHeap, 0, len(candidates))
	for _, u := range candidates {
		s, err := spread([]int32{u})
		if err != nil {
			return nil, err
		}
		h = append(h, celfEntry{user: u, gain: s, round: 0})
	}
	heap.Init(&h)

	var current float64
	for len(res.Seeds) < cfg.Seeds && h.Len() > 0 {
		top := heap.Pop(&h).(celfEntry)
		if top.round == len(res.Seeds) {
			// Fresh bound: by submodularity it is exact, select it.
			res.Seeds = append(res.Seeds, top.user)
			current += top.gain
			res.Spread = append(res.Spread, current)
			continue
		}
		// Stale: re-evaluate the marginal gain against the current set.
		withSeed := append(append([]int32(nil), res.Seeds...), top.user)
		total, err := spread(withSeed)
		if err != nil {
			return nil, err
		}
		gain := total - current
		if gain < 0 {
			gain = 0 // Monte-Carlo noise; spread is monotone
		}
		heap.Push(&h, celfEntry{user: top.user, gain: gain, round: len(res.Seeds)})
	}
	return res, nil
}

// ModelProber adapts a latent pair scorer into an EdgeProber by mapping the
// score of each real edge through a logistic link: P_uv = σ(x(u,v) + Offset).
// It lets a trained Inf2vec model drive IC-based seed selection.
type ModelProber struct {
	G *graph.Graph
	// Score returns the learned pair affinity x(u,v).
	Score func(u, v int32) float64
	// Offset shifts the logistic link; more negative means more
	// conservative probabilities.
	Offset float64
}

// Prob returns σ(Score(u,v)+Offset) for edges of G and 0 otherwise.
func (m *ModelProber) Prob(u, v int32) float64 {
	if !m.G.HasEdge(u, v) {
		return 0
	}
	return vecmath.Sigmoid(m.Score(u, v) + m.Offset)
}
