// Quickstart: generate a small synthetic social network with an action log,
// train Inf2vec through the public API, and query the learned influence
// embedding.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"inf2vec"
	"inf2vec/internal/datagen"
)

func main() {
	// A small digg-like world: 400 users, 80 items, influence + interests.
	cfg := datagen.DiggLike(7)
	cfg.NumUsers = 400
	cfg.NumItems = 80
	ds, err := datagen.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	st := ds.Log.ComputeStats()
	fmt.Printf("world: %d users, %d edges, %d items, %d adoptions\n",
		ds.Graph.NumNodes(), ds.Graph.NumEdges(), st.NumItems, st.NumActions)

	// The paper's protocol: train on 80% of episodes, hold the rest out.
	train, _, test, err := ds.Log.Split(1, 0.8, 0.1)
	if err != nil {
		log.Fatal(err)
	}

	model, stats, err := inf2vec.TrainWithStats(ds.Graph, train, inf2vec.Config{
		Dim:               32,
		ContextLength:     30,
		Alpha:             0.15,
		LearningRate:      0.025,
		DecayLearningRate: true,
		Iterations:        20,
		Seed:              1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained on %d influence contexts (%d positives); final loss %.3f\n",
		stats.NumTuples, stats.NumPositives, stats.EpochLoss[len(stats.EpochLoss)-1])

	// Who does user 0 influence?
	fmt.Println("\nusers most likely influenced by user 0:")
	for i, r := range model.RankInfluenced([]int32{0}, inf2vec.Max, 5) {
		fmt.Printf("  %d. user %-4d score %+.3f\n", i+1, r.User, r.Score)
	}

	// How well does the embedding predict held-out activations?
	metrics, err := model.EvaluateActivation(ds.Graph, test, inf2vec.Max)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nheld-out activation prediction: %s\n", metrics)
}
