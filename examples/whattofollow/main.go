// What-to-follow: an activation-prediction deployment loop. A story starts
// spreading; as each adoption arrives we re-rank the not-yet-active users
// by their likelihood of adopting next (Eq. 7 over their active friends) —
// the feed-ranking / notification-targeting use the paper's introduction
// motivates.
//
//	go run ./examples/whattofollow
package main

import (
	"fmt"
	"log"
	"sort"

	"inf2vec"
	"inf2vec/internal/datagen"
)

func main() {
	cfg := datagen.DiggLike(23)
	cfg.NumUsers = 500
	cfg.NumItems = 100
	ds, err := datagen.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	train, _, test, err := ds.Log.Split(4, 0.8, 0.1)
	if err != nil {
		log.Fatal(err)
	}
	model, err := inf2vec.Train(ds.Graph, train, inf2vec.Config{
		Dim: 32, ContextLength: 30, Alpha: 0.15,
		LearningRate: 0.025, DecayLearningRate: true, Iterations: 20, Seed: 5,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Replay the largest held-out episode as if it were arriving live.
	var episode *inf2vec.Episode
	test.Episodes(func(e *inf2vec.Episode) {
		if episode == nil || e.Len() > episode.Len() {
			episode = e
		}
	})
	if episode == nil || episode.Len() < 6 {
		log.Fatal("no sizable test episode; re-run with another seed")
	}
	fmt.Printf("replaying item %d: %d adoptions\n\n", episode.Item, episode.Len())

	users := episode.Users()
	willAdopt := make(map[int32]bool, len(users))
	for _, u := range users {
		willAdopt[u] = true
	}

	var active []int32
	hits, alerts := 0, 0
	for step, u := range users {
		active = append(active, u)
		if step != 2 && step != episode.Len()/2 {
			continue
		}
		// Alert on the top-5 most at-risk friends of the active set.
		preds := rankCandidates(model, ds.Graph, active, 5)
		fmt.Printf("after %d adoptions, most likely next:\n", len(active))
		for _, p := range preds {
			outcome := "will NOT adopt"
			if willAdopt[p.User] {
				outcome = "ADOPTS later"
				hits++
			}
			alerts++
			fmt.Printf("  user %-4d score %+.3f  -> %s\n", p.User, p.Score, outcome)
		}
		fmt.Println()
	}
	fmt.Printf("alert precision this episode: %d/%d\n", hits, alerts)
}

// rankCandidates scores every inactive friend of the active set (Eq. 7 with
// Max aggregation) and returns the top k.
func rankCandidates(m *inf2vec.Model, g *inf2vec.Graph, active []int32, k int) []inf2vec.Ranked {
	isActive := make(map[int32]bool, len(active))
	for _, u := range active {
		isActive[u] = true
	}
	seen := map[int32]bool{}
	var out []inf2vec.Ranked
	for _, u := range active {
		for _, v := range g.OutNeighbors(u) {
			if isActive[v] || seen[v] {
				continue
			}
			seen[v] = true
			score, err := m.PredictActivation(friendsOf(g, active, v), v, inf2vec.Max)
			if err != nil {
				// v is u's out-neighbor, so it always has at least one
				// active friend; skip defensively anyway.
				continue
			}
			out = append(out, inf2vec.Ranked{User: v, Score: score})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Score > out[j].Score })
	if k < len(out) {
		out = out[:k]
	}
	return out
}

// friendsOf filters the active set down to v's watchable friends, keeping
// activation order.
func friendsOf(g *inf2vec.Graph, active []int32, v int32) []int32 {
	var fs []int32
	for _, u := range active {
		if g.HasEdge(u, v) {
			fs = append(fs, u)
		}
	}
	return fs
}
