// Viral marketing: the paper's motivating application. Learn influence
// embeddings from past adoption logs, pick campaign seed users by
// CELF-greedy influence maximization over the learned influence model, and
// compare the resulting cascade size — simulated on the (hidden)
// ground-truth diffusion process — against the classic highest-degree
// seeding heuristic.
//
//	go run ./examples/viralmarketing
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	"inf2vec"
	"inf2vec/internal/datagen"
	"inf2vec/internal/ic"
	"inf2vec/internal/infmax"
	"inf2vec/internal/rng"
)

const (
	numSeeds      = 10
	mcRuns        = 300
	candidatePool = 60 // CELF candidate shortlist size
)

func main() {
	cfg := datagen.DiggLike(11)
	cfg.NumUsers = 600
	cfg.NumItems = 120
	ds, err := datagen.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	train, _, _, err := ds.Log.Split(2, 0.8, 0.1)
	if err != nil {
		log.Fatal(err)
	}

	model, err := inf2vec.Train(ds.Graph, train, inf2vec.Config{
		Dim: 32, ContextLength: 30, Alpha: 0.15,
		LearningRate: 0.025, DecayLearningRate: true, Iterations: 20, Seed: 3,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Strategy 1: CELF-greedy influence maximization over the LEARNED
	// influence model (pair scores mapped through a logistic link), with the
	// candidate pool shortlisted by learned influence reach.
	learned := &infmax.ModelProber{
		G:      ds.Graph,
		Score:  model.Score,
		Offset: -4, // conservative link: only strong learned ties propagate
	}
	shortlist := topByInfluenceReach(model, ds.Graph, candidatePool)
	res, err := infmax.Greedy(context.Background(), ds.Graph, learned, infmax.Config{
		Seeds:          numSeeds,
		MonteCarloRuns: 100,
		Seed:           7,
		Candidates:     shortlist,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CELF selected %v in %d spread evaluations\n", res.Seeds, res.Evaluations)

	// Strategy 2: highest out-degree (the standard heuristic).
	degSeeds := topByOutDegree(ds.Graph, numSeeds)

	// Judge both against the hidden ground truth: Monte-Carlo IC simulation
	// with the planted edge probabilities the learners never saw.
	r := rng.New(99)
	embSpread, err := ic.ExpectedSpread(context.Background(), ds.Graph, ds.TrueProbs, res.Seeds, mcRuns, r)
	if err != nil {
		log.Fatal(err)
	}
	degSpread, err := ic.ExpectedSpread(context.Background(), ds.Graph, ds.TrueProbs, degSeeds, mcRuns, r)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\ncampaign with %d seeds on %d users:\n", numSeeds, ds.Graph.NumNodes())
	fmt.Printf("  Inf2vec + CELF seeds:  expected cascade %.1f users\n", embSpread)
	fmt.Printf("  degree-selected seeds: expected cascade %.1f users\n", degSpread)
	if embSpread > degSpread {
		fmt.Println("  -> the learned embedding finds better spreaders than raw degree")
	} else {
		fmt.Println("  -> degree seeding won this round; try more training data")
	}
}

// topByInfluenceReach ranks users by the sum of their learned pair scores
// over their actual out-neighbors.
func topByInfluenceReach(m *inf2vec.Model, g *inf2vec.Graph, k int) []int32 {
	type scored struct {
		u     int32
		reach float64
	}
	all := make([]scored, 0, g.NumNodes())
	for u := int32(0); u < g.NumNodes(); u++ {
		var reach float64
		for _, v := range g.OutNeighbors(u) {
			reach += m.Score(u, v)
		}
		all = append(all, scored{u, reach})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].reach > all[j].reach })
	seeds := make([]int32, k)
	for i := 0; i < k; i++ {
		seeds[i] = all[i].u
	}
	return seeds
}

func topByOutDegree(g *inf2vec.Graph, k int) []int32 {
	type scored struct {
		u   int32
		deg int32
	}
	all := make([]scored, 0, g.NumNodes())
	for u := int32(0); u < g.NumNodes(); u++ {
		all = append(all, scored{u, g.OutDegree(u)})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].deg > all[j].deg })
	seeds := make([]int32, k)
	for i := 0; i < k; i++ {
		seeds[i] = all[i].u
	}
	return seeds
}
