// Citation case study (the paper's §V-D): on a citation network, predict
// which researchers will cite a given author, comparing the embedding model
// against the conventional ST + Monte-Carlo influence model.
//
//	go run ./examples/citation
package main

import (
	"fmt"
	"log"

	"inf2vec/internal/citation"
	"inf2vec/internal/core"
)

func main() {
	data, err := citation.Generate(citation.Config{
		NumAuthors: 500,
		NumPapers:  1200,
		Seed:       5,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("citation network: %d authors, %d train + %d test influence relationships\n",
		data.Config.NumAuthors, len(data.TrainPairs), len(data.TestPairs))

	res, err := citation.RunStudy(data, citation.StudyConfig{
		Embedding:      core.Config{Dim: 32, Iterations: 10, LearningRate: 0.02, Seed: 1},
		MonteCarloRuns: 300,
		Seed:           2,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nmean P@10 over %d test authors:\n", res.NumTestAuthors)
	fmt.Printf("  embedding model:    %.4f\n", res.EmbeddingPrecision)
	fmt.Printf("  conventional model: %.4f\n", res.ConventionalPrecision)

	for _, ex := range res.Examples {
		fmt.Printf("\npredicted followers of author-%d (%d papers):\n", ex.Author, ex.PaperCount)
		fmt.Printf("  %-24s %-24s\n", "embedding", "conventional")
		n := len(ex.Embedding)
		if len(ex.Conventional) > n {
			n = len(ex.Conventional)
		}
		mark := func(p citation.Prediction) string {
			sign := "-"
			if p.Hit {
				sign = "+"
			}
			return fmt.Sprintf("author-%d (%s)", p.Author, sign)
		}
		for i := 0; i < n; i++ {
			var left, right string
			if i < len(ex.Embedding) {
				left = mark(ex.Embedding[i])
			}
			if i < len(ex.Conventional) {
				right = mark(ex.Conventional[i])
			}
			fmt.Printf("  %-24s %-24s\n", left, right)
		}
		fmt.Printf("  hits: %d/10 vs %d/10\n", ex.EmbeddingHits, ex.ConventionalHit)
	}
}
