// Topic-aware influence (the paper's first future-work direction): train
// per-topic influence embeddings alongside the global model and condition
// predictions on the spreading item's topic.
//
//	go run ./examples/topicaware
package main

import (
	"fmt"
	"log"

	"inf2vec/internal/actionlog"
	"inf2vec/internal/core"
	"inf2vec/internal/datagen"
	"inf2vec/internal/eval"
	"inf2vec/internal/topicaware"
)

func main() {
	cfg := datagen.DiggLike(41)
	cfg.NumUsers = 400
	cfg.NumItems = 120
	cfg.NumTopics = 4
	ds, err := datagen.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	train, _, test, err := ds.Log.Split(1, 0.8, 0.1)
	if err != nil {
		log.Fatal(err)
	}

	model, err := topicaware.Train(ds.Graph, train, ds.ItemTopic, topicaware.Config{
		Base: core.Config{
			Dim: 16, ContextLength: 20, Alpha: 0.15,
			LearningRate: 0.025, DecayLearningRate: true, Iterations: 12, Seed: 2,
		},
		MinEpisodes: 8,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained global model + %d topic specialists\n\n", len(model.PerTopic))

	// Evaluate per-episode: the topic-aware scorer knows each item's topic.
	var awareAUC, blindAUC float64
	var n int
	test.Episodes(func(e *actionlog.Episode) {
		single, err := actionlog.FromEpisodes(test.NumUsers(), []actionlog.Episode{*e})
		if err != nil {
			log.Fatal(err)
		}
		scorer, err := model.ItemScorer(e.Item)
		if err != nil {
			log.Fatal(err)
		}
		aware, err := eval.ActivationPrediction(ds.Graph, single,
			eval.LatentActivationScorer(scorer, eval.Max))
		if err != nil {
			log.Fatal(err)
		}
		blind, err := eval.ActivationPrediction(ds.Graph, single,
			eval.LatentActivationScorer(model.Global, eval.Max))
		if err != nil {
			log.Fatal(err)
		}
		if aware.AUC > 0 && blind.AUC > 0 {
			awareAUC += aware.AUC
			blindAUC += blind.AUC
			n++
		}
	})
	if n == 0 {
		log.Fatal("no evaluable test episodes")
	}
	fmt.Printf("held-out activation AUC over %d episodes:\n", n)
	fmt.Printf("  topic-aware: %.4f\n", awareAUC/float64(n))
	fmt.Printf("  topic-blind: %.4f\n", blindAUC/float64(n))

	// Show how a user's predicted influence targets shift with the topic.
	var u int32 // most prolific source in training
	var best int64
	counts := train.UserActionCounts()
	for v, c := range counts {
		if c > best {
			best = c
			u = int32(v)
		}
	}
	fmt.Printf("\ntop predicted influence targets of user %d, by topic:\n", u)
	for z := 0; z < cfg.NumTopics; z++ {
		if _, ok := model.PerTopic[z]; !ok {
			continue
		}
		type ranked struct {
			v int32
			x float64
		}
		var top ranked
		top.x = -1e18
		for v := int32(0); v < ds.Graph.NumNodes(); v++ {
			if v == u {
				continue
			}
			if x := model.Score(z, u, v); x > top.x {
				top = ranked{v, x}
			}
		}
		fmt.Printf("  topic %d: user %-4d (score %+.3f)\n", z, top.v, top.x)
	}
}
