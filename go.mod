module inf2vec

go 1.22
