// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation section, plus ablation benches for the design choices called
// out in DESIGN.md §4.
//
// Run everything with
//
//	go test -bench=. -benchmem -timeout 0
//
// (the paper-scale suite exceeds Go's default 10-minute test timeout on a
// single core).
//
// Each table/figure bench renders its paper-shaped output once (to standard
// output) and reports headline numbers as custom benchmark metrics, so the
// bench log doubles as the reproduction record (EXPERIMENTS.md is generated
// from it).
//
// The paper-scale benches share one Suite — datasets and the seven trained
// methods are built once and reused, mirroring how the paper's tables share
// trained models. Ablation benches run on the reduced (Quick) scale so the
// full harness stays within tens of minutes.
package inf2vec

import (
	"fmt"
	"os"
	"runtime"
	"sync"
	"testing"

	"inf2vec/internal/baseline/embic"
	"inf2vec/internal/baseline/node2vec"
	"inf2vec/internal/core"
	"inf2vec/internal/datagen"
	"inf2vec/internal/eval"
	"inf2vec/internal/experiments"
	"inf2vec/internal/rng"
)

var (
	benchSuiteOnce sync.Once
	benchSuite     *experiments.Suite
)

// suite returns the shared full-scale experiment suite. Full-scale runs take
// minutes per section, so these benches are excluded from -short smoke runs
// (CI executes `go test -short -bench . -benchtime=1x`; the small-scale
// ablation benches below still run there).
func suite(b *testing.B) *experiments.Suite {
	if testing.Short() {
		b.Skip("full-scale paper reproduction skipped in -short mode")
	}
	benchSuiteOnce.Do(func() {
		benchSuite = experiments.NewSuite(experiments.Options{Seed: 1})
	})
	return benchSuite
}

var printOnce sync.Map

// printFirst renders output only on a bench's first execution, so repeated
// b.N iterations do not spam the log.
func printFirst(key string, render func()) {
	if _, loaded := printOnce.LoadOrStore(key, true); !loaded {
		render()
	}
}

func BenchmarkTableI_DatasetStats(b *testing.B) {
	s := suite(b)
	for i := 0; i < b.N; i++ {
		rows, err := s.TableI()
		if err != nil {
			b.Fatal(err)
		}
		printFirst("table1", func() {
			if err := experiments.RenderTableI(os.Stdout, rows); err != nil {
				b.Fatal(err)
			}
		})
	}
}

func BenchmarkFigure1_SourceFrequency(b *testing.B) {
	s := suite(b)
	for i := 0; i < b.N; i++ {
		figs, err := s.Figure1()
		if err != nil {
			b.Fatal(err)
		}
		printFirst("fig1", func() {
			if err := experiments.RenderFrequencyFigures(os.Stdout, "Figure 1 (source users)", figs); err != nil {
				b.Fatal(err)
			}
		})
		b.ReportMetric(figs[0].LogLogSlope, "digg-loglog-slope")
	}
}

func BenchmarkFigure2_TargetFrequency(b *testing.B) {
	s := suite(b)
	for i := 0; i < b.N; i++ {
		figs, err := s.Figure2()
		if err != nil {
			b.Fatal(err)
		}
		printFirst("fig2", func() {
			if err := experiments.RenderFrequencyFigures(os.Stdout, "Figure 2 (target users)", figs); err != nil {
				b.Fatal(err)
			}
		})
		b.ReportMetric(figs[0].LogLogSlope, "digg-loglog-slope")
	}
}

func BenchmarkFigure3_PriorFriendsCDF(b *testing.B) {
	s := suite(b)
	for i := 0; i < b.N; i++ {
		figs, err := s.Figure3()
		if err != nil {
			b.Fatal(err)
		}
		printFirst("fig3", func() {
			if err := experiments.RenderCDFFigures(os.Stdout, figs); err != nil {
				b.Fatal(err)
			}
		})
		b.ReportMetric(figs[0].Y[0], "digg-CDF0")
		b.ReportMetric(figs[1].Y[0], "flickr-CDF0")
	}
}

// reportInf2vec surfaces the Inf2vec row's AUC/MAP as bench metrics.
func reportInf2vec(b *testing.B, results []experiments.DatasetResults, prefix string) {
	b.Helper()
	for _, dr := range results {
		for _, row := range dr.Rows {
			if row.Method == "Inf2vec" {
				b.ReportMetric(row.Metrics.AUC, dr.Dataset+"-"+prefix+"-AUC")
				b.ReportMetric(row.Metrics.MAP, dr.Dataset+"-"+prefix+"-MAP")
			}
		}
	}
}

func BenchmarkTableII_ActivationPrediction(b *testing.B) {
	s := suite(b)
	for i := 0; i < b.N; i++ {
		results, err := s.TableII()
		if err != nil {
			b.Fatal(err)
		}
		printFirst("table2", func() {
			if err := experiments.RenderMethodTable(os.Stdout, "Table II: activation prediction", results); err != nil {
				b.Fatal(err)
			}
		})
		reportInf2vec(b, results, "act")
	}
}

func BenchmarkTableIII_DiffusionPrediction(b *testing.B) {
	s := suite(b)
	for i := 0; i < b.N; i++ {
		results, err := s.TableIII()
		if err != nil {
			b.Fatal(err)
		}
		printFirst("table3", func() {
			if err := experiments.RenderMethodTable(os.Stdout, "Table III: diffusion prediction", results); err != nil {
				b.Fatal(err)
			}
		})
		reportInf2vec(b, results, "diff")
	}
}

func BenchmarkTableIV_Inf2vecL(b *testing.B) {
	s := suite(b)
	for i := 0; i < b.N; i++ {
		rows, err := s.TableIV()
		if err != nil {
			b.Fatal(err)
		}
		printFirst("table4", func() {
			if err := experiments.RenderTableIV(os.Stdout, rows); err != nil {
				b.Fatal(err)
			}
		})
		b.ReportMetric(rows[0].Metrics.MAP, "digg-act-MAP")
	}
}

func BenchmarkTableV_Aggregators(b *testing.B) {
	s := suite(b)
	for i := 0; i < b.N; i++ {
		rows, err := s.TableV()
		if err != nil {
			b.Fatal(err)
		}
		printFirst("table5", func() {
			if err := experiments.RenderTableV(os.Stdout, rows); err != nil {
				b.Fatal(err)
			}
		})
	}
}

func BenchmarkFigure6_Visualization(b *testing.B) {
	s := suite(b)
	for i := 0; i < b.N; i++ {
		figs, err := s.Figure6()
		if err != nil {
			b.Fatal(err)
		}
		printFirst("fig6", func() {
			if err := experiments.RenderVisualization(os.Stdout, figs); err != nil {
				b.Fatal(err)
			}
		})
		for _, fig := range figs {
			if fig.Method == "Inf2vec" {
				b.ReportMetric(fig.Proximity, "inf2vec-proximity")
			}
		}
	}
}

func BenchmarkFigure7_DimensionSweep(b *testing.B) {
	s := suite(b)
	for i := 0; i < b.N; i++ {
		figs, err := s.Figure7()
		if err != nil {
			b.Fatal(err)
		}
		printFirst("fig7", func() {
			if err := experiments.RenderSweep(os.Stdout, "Figure 7: MAP vs dimension K", "K", figs); err != nil {
				b.Fatal(err)
			}
		})
	}
}

func BenchmarkFigure8_ContextLengthSweep(b *testing.B) {
	s := suite(b)
	for i := 0; i < b.N; i++ {
		figs, err := s.Figure8()
		if err != nil {
			b.Fatal(err)
		}
		printFirst("fig8", func() {
			if err := experiments.RenderSweep(os.Stdout, "Figure 8: MAP vs context length L", "L", figs); err != nil {
				b.Fatal(err)
			}
		})
	}
}

func BenchmarkFigure9_IterationTime(b *testing.B) {
	s := suite(b)
	for i := 0; i < b.N; i++ {
		figs, err := s.Figure9()
		if err != nil {
			b.Fatal(err)
		}
		printFirst("fig9", func() {
			if err := experiments.RenderTiming(os.Stdout, figs); err != nil {
				b.Fatal(err)
			}
		})
		// Headline: Emb-IC seconds per iteration divided by Inf2vec's, at
		// the largest common K on the digg-like dataset.
		var inf, emb float64
		for _, fig := range figs {
			if fig.Dataset != "digg-like" {
				continue
			}
			last := fig.Points[len(fig.Points)-1].Seconds
			switch fig.Method {
			case "Inf2vec":
				inf = last
			case "Emb-IC":
				emb = last
			}
		}
		if inf > 0 {
			b.ReportMetric(emb/inf, "embic-vs-inf2vec-slowdown")
		}
	}
}

func BenchmarkTableVI_CitationCaseStudy(b *testing.B) {
	s := suite(b)
	for i := 0; i < b.N; i++ {
		res, err := s.TableVI()
		if err != nil {
			b.Fatal(err)
		}
		printFirst("table6", func() {
			if err := experiments.RenderTableVI(os.Stdout, res); err != nil {
				b.Fatal(err)
			}
		})
		b.ReportMetric(res.EmbeddingPrecision, "embedding-P10")
		b.ReportMetric(res.ConventionalPrecision, "conventional-P10")
	}
}

// --- Ablation benches (DESIGN.md §4), reduced scale ---

// ablationWorld lazily generates the shared small-scale ablation dataset.
var ablationWorld = sync.OnceValues(func() (*datagen.Dataset, error) {
	cfg := datagen.DiggLike(17)
	cfg.NumUsers = 600
	cfg.NumItems = 150
	return datagen.Generate(cfg)
})

// runAblation trains one configuration on the ablation world and returns
// held-out activation metrics.
func runAblation(b *testing.B, mutate func(*core.Config)) eval.Metrics {
	b.Helper()
	ds, err := ablationWorld()
	if err != nil {
		b.Fatal(err)
	}
	train, _, test, err := ds.Log.Split(3, 0.8, 0.1)
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.Config{
		Dim: 24, ContextLength: 30, Alpha: 0.15,
		LearningRate: 0.025, DecayLearningRate: true,
		Iterations: 15, Seed: 5,
	}
	mutate(&cfg)
	res, err := core.Train(ds.Graph, train, cfg)
	if err != nil {
		b.Fatal(err)
	}
	metrics, err := eval.ActivationPrediction(ds.Graph, test,
		eval.LatentActivationScorer(res.Model, eval.Max))
	if err != nil {
		b.Fatal(err)
	}
	return metrics
}

func BenchmarkAblationAlphaSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		printFirst("abl-alpha", func() { fmt.Println("Ablation: component weight alpha (activation MAP)") })
		for _, alpha := range []float64{0, 0.15, 0.5, 1.0} {
			m := runAblation(b, func(c *core.Config) { c.Alpha = alpha })
			printFirst(fmt.Sprintf("abl-alpha-%v", alpha), func() {
				fmt.Printf("  alpha=%.2f  AUC=%.4f MAP=%.4f\n", alpha, m.AUC, m.MAP)
			})
			b.ReportMetric(m.MAP, fmt.Sprintf("MAP-alpha%.2f", alpha))
		}
	}
}

func BenchmarkAblationNegativeSampling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		uniform := runAblation(b, func(c *core.Config) { c.NegativePower = 0 })
		unigram := runAblation(b, func(c *core.Config) { c.NegativePower = 0.75 })
		printFirst("abl-neg", func() {
			fmt.Printf("Ablation: negative sampling — uniform MAP=%.4f, unigram^0.75 MAP=%.4f\n",
				uniform.MAP, unigram.MAP)
		})
		b.ReportMetric(uniform.MAP, "MAP-uniform")
		b.ReportMetric(unigram.MAP, "MAP-unigram075")
	}
}

func BenchmarkAblationRestartRatio(b *testing.B) {
	for i := 0; i < b.N; i++ {
		printFirst("abl-restart", func() { fmt.Println("Ablation: random-walk restart ratio (activation MAP)") })
		for _, ratio := range []float64{0.2, 0.5, 0.8} {
			m := runAblation(b, func(c *core.Config) { c.RestartRatio = ratio; c.Alpha = 0.5 })
			printFirst(fmt.Sprintf("abl-restart-%v", ratio), func() {
				fmt.Printf("  restart=%.1f  AUC=%.4f MAP=%.4f\n", ratio, m.AUC, m.MAP)
			})
			b.ReportMetric(m.MAP, fmt.Sprintf("MAP-restart%.1f", ratio))
		}
	}
}

func BenchmarkAblationBiases(b *testing.B) {
	for i := 0; i < b.N; i++ {
		with := runAblation(b, func(c *core.Config) {})
		without := runAblation(b, func(c *core.Config) { c.DisableBiases = true })
		printFirst("abl-bias", func() {
			fmt.Printf("Ablation: biases — with MAP=%.4f, without MAP=%.4f\n", with.MAP, without.MAP)
		})
		b.ReportMetric(with.MAP, "MAP-with-biases")
		b.ReportMetric(without.MAP, "MAP-without-biases")
	}
}

func BenchmarkAblationHighOrder(b *testing.B) {
	for i := 0; i < b.N; i++ {
		full := runAblation(b, func(c *core.Config) {})
		pairs := runAblation(b, func(c *core.Config) { c.FirstOrderOnly = true })
		printFirst("abl-order", func() {
			fmt.Printf("Ablation: context — full Algorithm 1 MAP=%.4f, first-order pairs only MAP=%.4f\n",
				full.MAP, pairs.MAP)
		})
		b.ReportMetric(full.MAP, "MAP-full-context")
		b.ReportMetric(pairs.MAP, "MAP-pairs-only")
	}
}

func BenchmarkAblationParallelTraining(b *testing.B) {
	ds, err := ablationWorld()
	if err != nil {
		b.Fatal(err)
	}
	train, _, _, err := ds.Log.Split(3, 0.8, 0.1)
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := core.Train(ds.Graph, train, core.Config{
					Dim: 24, ContextLength: 30, Alpha: 0.15,
					LearningRate: 0.025, Iterations: 5, Seed: 5, Workers: workers,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.Epochs[len(res.Epochs)-1].Loss, "final-loss")
			}
		})
	}
}

// BenchmarkCorpusGeneration measures the context-generation phase
// (Algorithm 2 lines 3–8) at 1, 2 and GOMAXPROCS corpus workers on the
// digg-like ablation world. The corpus is bitwise identical at every worker
// count, so the episodes/s column is the only thing that should move.
func BenchmarkCorpusGeneration(b *testing.B) {
	ds, err := ablationWorld()
	if err != nil {
		b.Fatal(err)
	}
	train, _, _, err := ds.Log.Split(3, 0.8, 0.1)
	if err != nil {
		b.Fatal(err)
	}
	workerCounts := []int{1, 2}
	if n := runtime.GOMAXPROCS(0); n > 2 {
		workerCounts = append(workerCounts, n)
	}
	for _, workers := range workerCounts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cfg := core.Config{
				ContextLength: 50, Alpha: 0.1, RestartRatio: 0.5,
				CorpusWorkers: workers,
			}
			var tuples int
			for i := 0; i < b.N; i++ {
				c := core.GenerateCorpus(ds.Graph, train, cfg, rng.New(5))
				tuples = len(c.Tuples)
			}
			episodes := float64(train.NumEpisodes())
			b.ReportMetric(episodes*float64(b.N)/b.Elapsed().Seconds(), "episodes/s")
			b.ReportMetric(float64(tuples), "tuples")
		})
	}
}

// BenchmarkTrainThroughput measures raw SGD throughput (positives/second)
// at the paper's default K=50, the number Figure 9's comparison rests on.
func BenchmarkTrainThroughput(b *testing.B) {
	ds, err := ablationWorld()
	if err != nil {
		b.Fatal(err)
	}
	train, _, _, err := ds.Log.Split(3, 0.8, 0.1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var positives int64
	for i := 0; i < b.N; i++ {
		res, err := core.Train(ds.Graph, train, core.Config{
			Dim: 50, Iterations: 1, Seed: 5, Workers: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		positives = res.NumPositives
	}
	b.ReportMetric(float64(positives)*float64(b.N)/b.Elapsed().Seconds(), "positives/s")
}

// baselineWorld lazily generates the paper-scale dataset shared by the
// baseline-training benches.
var baselineWorld = sync.OnceValues(func() (*datagen.Dataset, error) {
	return datagen.Generate(datagen.DiggLike(1))
})

// BenchmarkBaselineTraining measures the trainer engine's parallel speedup
// on the two heaviest rebuilt baselines: node2vec and Emb-IC at 1 worker
// and at GOMAXPROCS workers on the paper-scale digg-like world. The models
// are bitwise identical at every worker count, so the ratio of the two
// timings is pure engine speedup. -short shrinks the training budget but
// still exercises both methods at both worker counts.
func BenchmarkBaselineTraining(b *testing.B) {
	ds, err := baselineWorld()
	if err != nil {
		b.Fatal(err)
	}
	n2vCfg := node2vec.Config{
		Dim: 50, WalksPerNode: 10, WalkLength: 40, Window: 5, Epochs: 2, Seed: 7,
	}
	embCfg := embic.Config{Dim: 50, Iterations: 10, Seed: 7}
	if testing.Short() {
		n2vCfg.WalksPerNode = 2
		n2vCfg.Epochs = 1
		embCfg.Iterations = 2
	}
	workerCounts := []int{1}
	if n := runtime.GOMAXPROCS(0); n > 1 {
		workerCounts = append(workerCounts, n)
	}
	for _, workers := range workerCounts {
		b.Run(fmt.Sprintf("node2vec/workers=%d", workers), func(b *testing.B) {
			cfg := n2vCfg
			cfg.Workers = workers
			for i := 0; i < b.N; i++ {
				if _, err := node2vec.Train(ds.Graph, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("embic/workers=%d", workers), func(b *testing.B) {
			cfg := embCfg
			cfg.Workers = workers
			for i := 0; i < b.N; i++ {
				if _, err := embic.Train(ds.Graph, ds.Log, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
