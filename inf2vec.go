// Package inf2vec is the public API of the Inf2vec reproduction: a latent
// representation model for social influence embedding (Feng et al., ICDE
// 2018).
//
// Inf2vec learns, for every user of a social network, a source embedding
// S_u (the capability to influence others), a target embedding T_u (the
// tendency to be influenced), an influence-ability bias b_u and a conformity
// bias b̃_u, from a social graph plus an action log of (user, item, time)
// adoptions. The learned pair score
//
//	x(u,v) = S_u · T_v + b_u + b̃_v
//
// ranks how likely u is to influence v, and aggregating it over a set of
// already-active users (Eq. 7 of the paper) predicts activations and
// diffusion.
//
// # Quick start
//
//	g, _ := inf2vec.ReadGraph(graphFile)          // "u<TAB>v" edges: u can influence v
//	log, _ := inf2vec.ReadActionLog(logFile, g.NumNodes())
//	model, _ := inf2vec.Train(g, log, inf2vec.Config{Seed: 1})
//	score := model.Score(u, v)                    // learned influence affinity
//	top := model.RankInfluenced([]int32{seed}, inf2vec.Max, 10)
//
// See the examples/ directory for end-to-end programs, and the internal
// packages for the full experiment harness reproducing the paper's tables
// and figures.
package inf2vec

import (
	"context"
	"fmt"
	"io"
	"os"

	"inf2vec/internal/actionlog"
	"inf2vec/internal/core"
	"inf2vec/internal/embed"
	"inf2vec/internal/eval"
	"inf2vec/internal/graph"
)

// Config collects Inf2vec's hyperparameters; zero values select the paper's
// defaults (K=50, L=50, α=0.1, restart 0.5, γ=0.005, |N|=5, 10 iterations).
// See the field documentation in the underlying type.
type Config = core.Config

// Graph is a directed social network over dense int32 user IDs. An edge
// (u,v) means v watches u, so influence flows u -> v.
type Graph = graph.Graph

// GraphBuilder incrementally assembles a Graph.
type GraphBuilder = graph.Builder

// NewGraphBuilder returns a builder for a graph with at least n nodes.
func NewGraphBuilder(n int32) *GraphBuilder { return graph.NewBuilder(n) }

// ActionLog is a set of diffusion episodes: who adopted which item when.
type ActionLog = actionlog.Log

// Action is one raw (user, item, time) adoption record.
type Action = actionlog.Action

// Episode is one diffusion episode: every adoption of one item in
// chronological order.
type Episode = actionlog.Episode

// NewActionLog builds an ActionLog from raw adoption records over a fixed
// user universe.
func NewActionLog(numUsers int32, actions []Action) (*ActionLog, error) {
	return actionlog.FromActions(numUsers, actions)
}

// Aggregator merges per-pair scores from several possible influencers into
// one activation likelihood (the F() of Eq. 7).
type Aggregator = eval.Aggregator

// The four aggregation functions of the paper's Table V.
const (
	Ave    = eval.Ave
	Sum    = eval.Sum
	Max    = eval.Max
	Latest = eval.Latest
)

// ParseAggregator resolves a case-insensitive aggregator name ("ave", "sum",
// "max", "latest").
func ParseAggregator(name string) (Aggregator, error) { return eval.ParseAggregator(name) }

// Scorer is a bounds-checked, cancellation-aware scoring facade over a
// model: the building block of the online serving layer. See NewScorer.
type Scorer = eval.Scorer

// ErrNoScores reports an aggregation over an empty score set (Eq. 7 is
// undefined for a candidate with no active neighbor).
var ErrNoScores = eval.ErrNoScores

// ErrUserRange reports a user ID outside the model's universe.
var ErrUserRange = eval.ErrUserRange

// Metrics is an evaluation result row: AUC, MAP and P@{10,50,100} averaged
// over test episodes.
type Metrics = eval.Metrics

// ReadGraph parses a directed edge list ("u<TAB>v" per line, '#' comments)
// from r. The node universe is the largest ID seen plus one.
func ReadGraph(r io.Reader) (*Graph, error) { return graph.ReadEdgeList(r, 0) }

// ReadGraphFile is ReadGraph over a file path.
func ReadGraphFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("inf2vec: %w", err)
	}
	defer f.Close()
	return graph.ReadEdgeList(f, 0)
}

// ReadActionLog parses an action log ("user<TAB>item<TAB>time" per line)
// from r. Pass numUsers 0 to infer the universe from the data.
func ReadActionLog(r io.Reader, numUsers int32) (*ActionLog, error) {
	return actionlog.ReadTSV(r, numUsers)
}

// ReadActionLogFile is ReadActionLog over a file path.
func ReadActionLogFile(path string, numUsers int32) (*ActionLog, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("inf2vec: %w", err)
	}
	defer f.Close()
	return actionlog.ReadTSV(f, numUsers)
}

// Model is a trained social influence embedding.
type Model struct {
	inner *core.Model
}

// Recovery records one divergence-recovery event of the fault-tolerant
// training loop: the epoch whose pass produced non-finite parameters, the
// halved learning-rate multiplier applied afterwards, and whether the model
// was re-initialized rather than rolled back to a checkpoint.
type Recovery = core.Recovery

// TrainEvent is one typed training-telemetry record, delivered synchronously
// on the training goroutine when Config.Telemetry is set. Marshal one per
// line for a JSONL telemetry stream.
type TrainEvent = core.Event

// TrainEventKind discriminates TrainEvent records.
type TrainEventKind = core.EventKind

// TraceTelemetry adapts a telemetry stream into trace spans hanging off
// ctx's current span (see internal/obs): corpus generation and each epoch
// become child spans carrying loss and throughput attrs, while checkpoint
// writes and divergence recoveries become events on the parent span. Events
// flow through to inner (which may be nil) unchanged, so a JSONL sink keeps
// working alongside. The returned closeOpen func must be deferred on the
// training goroutine: it ends any span a cancellation or panic left open.
// When ctx carries no span both returns are inert, so the wrapping costs
// nothing untraced.
func TraceTelemetry(ctx context.Context, inner func(TrainEvent)) (func(TrainEvent), func()) {
	return core.TraceTelemetry(ctx, inner)
}

// The training-telemetry milestones. See the core documentation for the
// fields each kind populates.
const (
	EventTrainStart         = core.EventTrainStart
	EventEpochStart         = core.EventEpochStart
	EventEpochEnd           = core.EventEpochEnd
	EventDivergenceRecovery = core.EventDivergenceRecovery
	EventCheckpointWritten  = core.EventCheckpointWritten
	EventTrainEnd           = core.EventTrainEnd
)

// ErrDiverged is returned when training produces non-finite parameters and
// the bounded divergence recovery fails to restore a finite trajectory.
var ErrDiverged = core.ErrDiverged

// ErrCheckpointMismatch is returned by Resume when the checkpoint on disk
// was written under a different training configuration.
var ErrCheckpointMismatch = core.ErrCheckpointMismatch

// Train fits Inf2vec (Algorithm 2 of the paper) on a social graph and the
// training split of an action log.
func Train(g *Graph, log *ActionLog, cfg Config) (*Model, error) {
	res, err := core.Train(g, log, cfg)
	if err != nil {
		return nil, err
	}
	return &Model{inner: res.Model}, nil
}

// TrainContext is Train under a cancellation context: cancellation is
// observed between epochs and at shard boundaries inside each SGD pass, so
// hogwild workers drain cleanly. On cancellation the best-so-far model is
// returned (use TrainWithStatsContext to observe the Canceled flag).
func TrainContext(ctx context.Context, g *Graph, log *ActionLog, cfg Config) (*Model, error) {
	res, err := core.TrainContext(ctx, g, log, cfg)
	if err != nil {
		return nil, err
	}
	return &Model{inner: res.Model}, nil
}

// TrainWithStats is Train, additionally returning per-epoch losses and
// timings and the corpus shape.
func TrainWithStats(g *Graph, log *ActionLog, cfg Config) (*Model, *TrainStats, error) {
	return TrainWithStatsContext(context.Background(), g, log, cfg)
}

// TrainWithStatsContext is TrainWithStats under a cancellation context.
func TrainWithStatsContext(ctx context.Context, g *Graph, log *ActionLog, cfg Config) (*Model, *TrainStats, error) {
	res, err := core.TrainContext(ctx, g, log, cfg)
	if err != nil {
		return nil, nil, err
	}
	return &Model{inner: res.Model}, newTrainStats(res), nil
}

// Resume continues a training run from the checkpoint at
// cfg.CheckpointPath, written by a previous run with the same graph, log
// and configuration. Single-worker resumed runs are bitwise identical to
// uninterrupted ones. Resuming an already-finished run returns the final
// model immediately.
func Resume(ctx context.Context, g *Graph, log *ActionLog, cfg Config) (*Model, *TrainStats, error) {
	res, err := core.Resume(ctx, g, log, cfg)
	if err != nil {
		return nil, nil, err
	}
	return &Model{inner: res.Model}, newTrainStats(res), nil
}

// TrainStats summarizes a training run.
type TrainStats struct {
	NumTuples    int       // generated (u, C_u^i) tuples, |P|
	NumPositives int64     // total context entries, |P|·L
	EpochLoss    []float64 // mean Eq. 4 objective per positive, per pass
	EpochSeconds []float64 // wall-clock seconds per pass
	// StartEpoch is the first epoch this call executed: 0 for a fresh run,
	// the checkpoint's completed-epoch count after Resume.
	StartEpoch int
	// Canceled reports that the run stopped early because its context was
	// canceled; the model holds the best-so-far parameters and EpochLoss
	// covers completed passes only.
	Canceled bool
	// Recoveries is the divergence-recovery history, oldest first.
	Recoveries []Recovery
}

func newTrainStats(res *core.Result) *TrainStats {
	stats := &TrainStats{
		NumTuples:    res.NumTuples,
		NumPositives: res.NumPositives,
		StartEpoch:   res.StartEpoch,
		Canceled:     res.Canceled,
		Recoveries:   append([]Recovery(nil), res.Recoveries...),
	}
	for _, e := range res.Epochs {
		stats.EpochLoss = append(stats.EpochLoss, e.Loss)
		stats.EpochSeconds = append(stats.EpochSeconds, e.Duration.Seconds())
	}
	return stats
}

// Score returns the learned influence affinity x(u,v).
func (m *Model) Score(u, v int32) float64 { return m.inner.Score(u, v) }

// NumUsers returns the user universe size.
func (m *Model) NumUsers() int32 { return m.inner.Store.NumUsers() }

// Dim returns the embedding dimension K.
func (m *Model) Dim() int { return m.inner.Store.Dim() }

// SourceEmbedding returns a copy of S_u.
func (m *Model) SourceEmbedding(u int32) []float32 {
	return append([]float32(nil), m.inner.Store.SourceVec(u)...)
}

// TargetEmbedding returns a copy of T_u.
func (m *Model) TargetEmbedding(u int32) []float32 {
	return append([]float32(nil), m.inner.Store.TargetVec(u)...)
}

// Biases returns (b_u, b̃_u) for user u.
func (m *Model) Biases(u int32) (influenceAbility, conformity float32) {
	return *m.inner.Store.BiasSource(u), *m.inner.Store.BiasTarget(u)
}

// NewScorer returns the model's online scoring facade: bounds-checked pair
// scores, Eq. 7 activation aggregation, and deadline-aware top-k influence
// ranking. The serving layer and the convenience methods below share it.
func (m *Model) NewScorer() *Scorer {
	sc, err := eval.NewScorer(m.inner, m.NumUsers())
	if err != nil {
		// A trained model always has a positive universe and a scorer.
		panic(fmt.Sprintf("inf2vec: model scorer: %v", err))
	}
	return sc
}

// PredictActivation aggregates the pair scores from the time-ordered active
// user set onto candidate v (Eq. 7). An empty active set returns
// ErrNoScores, an out-of-universe user ErrUserRange.
func (m *Model) PredictActivation(active []int32, v int32, agg Aggregator) (float64, error) {
	return m.NewScorer().Activation(active, v, agg)
}

// Ranked is one entry of a ranked user list.
type Ranked = eval.Ranked

// RankInfluenced scores every user against the time-ordered seed set and
// returns the topK users most likely to be influenced, descending. Seeds
// themselves are excluded. Empty seeds, non-positive topK or out-of-universe
// seed IDs yield nil; use NewScorer().TopInfluenced for error detail and
// cancellation.
func (m *Model) RankInfluenced(seeds []int32, agg Aggregator, topK int) []Ranked {
	if len(seeds) == 0 || topK <= 0 {
		return nil
	}
	all, err := m.NewScorer().TopInfluenced(context.Background(), seeds, agg, topK)
	if err != nil {
		return nil
	}
	return all
}

// EvaluateActivation runs the paper's activation-prediction task (§V-B1) on
// a held-out test log.
func (m *Model) EvaluateActivation(g *Graph, test *ActionLog, agg Aggregator) (Metrics, error) {
	return eval.ActivationPrediction(g, test, eval.LatentActivationScorer(m.inner, agg))
}

// EvaluateDiffusion runs the paper's diffusion-prediction task (§V-B2):
// seedFrac (paper: 0.05) of each test episode seeds the cascade, the rest is
// ground truth.
func (m *Model) EvaluateDiffusion(g *Graph, test *ActionLog, agg Aggregator, seedFrac float64) (Metrics, error) {
	return eval.DiffusionPrediction(g, test,
		eval.LatentDiffusionScorer(m.inner, agg, test.NumUsers()), seedFrac)
}

// Save writes the model's parameters to w in a versioned, CRC-trailed
// binary format.
func (m *Model) Save(w io.Writer) error { return m.inner.Store.Save(w) }

// SaveFile is Save to a file path. The write is atomic (temp file, fsync,
// rename), so a serving process hot-reloading the path can never observe a
// torn model.
func (m *Model) SaveFile(path string) error {
	return m.inner.Store.SaveFile(path)
}

// LoadModel reads a model written by Save. The loaded model scores and
// predicts; the training configuration is not persisted.
func LoadModel(r io.Reader) (*Model, error) {
	store, err := embed.Load(r)
	if err != nil {
		return nil, err
	}
	return &Model{inner: &core.Model{Store: store}}, nil
}

// LoadModelFile is LoadModel from a file path.
func LoadModelFile(path string) (*Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("inf2vec: %w", err)
	}
	defer f.Close()
	return LoadModel(f)
}
